"""Discrete-event simulated CUDA streams.

A :class:`Stream` is a serial queue of operations: an op scheduled with an
``earliest`` release time starts at ``max(stream.busy_until, earliest)`` and
occupies the stream for its duration, exactly like ops issued to one CUDA
stream.  Ops on *different* streams overlap freely, which is how the paper's
3-phase pipeline (graph loading / walk loading / computing on three CUDA
streams, §III-D) is modeled.

Every op is tagged with a category; :class:`TimeBreakdown` accumulates busy
time per category, producing the Fig 15 / Fig 17 / Table I style breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.units import Seconds

#: Tolerance for comparing simulated timestamps.  Timestamps are sums of
#: float durations accumulated in program order, so two "simultaneous"
#: times can differ by accumulated rounding; exact ``==``/``!=`` on them
#: is a bug (lint rule ``float-timestamp-eq``) — use :func:`times_close`.
TIME_EPS = 1e-12


def times_close(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Whether two simulated timestamps are equal up to rounding."""
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


#: Signature of a stream observer: ``(stream, category, start, end,
#: earliest)`` called after every scheduled op (sanitizer hook).
StreamObserver = Callable[["Stream", str, float, float, float], None]


@dataclass(frozen=True)
class StreamOp:
    """One completed operation on a stream (kept for tests/inspection)."""

    category: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"negative-duration op {self.category!r}: "
                f"start={self.start} end={self.end}"
            )

    @property
    def duration(self) -> Seconds:
        return Seconds(self.end - self.start)


class TimeBreakdown:
    """Per-category accumulated busy time."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    def add(self, category: str, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._totals[category] = self._totals.get(category, 0.0) + duration

    def get(self, category: str) -> Seconds:
        return Seconds(self._totals.get(category, 0.0))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)

    def total(self) -> Seconds:
        return Seconds(sum(self._totals.values()))

    def merge(self, other: "TimeBreakdown") -> None:
        for category, duration in other._totals.items():
            self.add(category, duration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{k}={v * 1e3:.3f}ms" for k, v in sorted(self._totals.items())
        )
        return f"<TimeBreakdown {inner}>"


class Stream:
    """A serial simulated stream (one CUDA stream)."""

    def __init__(
        self,
        name: str,
        breakdown: Optional[TimeBreakdown] = None,
        record_ops: bool = False,
    ) -> None:
        self.name = name
        self.busy_until = 0.0
        self._breakdown = breakdown
        self._record_ops = record_ops
        self.ops: List[StreamOp] = []
        #: optional post-schedule callback (see :data:`StreamObserver`);
        #: pure observation — must not touch the stream's state.
        self.observer: Optional[StreamObserver] = None

    def schedule(
        self, duration: float, category: str, earliest: float = 0.0
    ) -> Tuple[Seconds, Seconds]:
        """Append an op; returns its ``(start, end)`` times.

        ``earliest`` expresses a cross-stream dependency (the op cannot start
        before that time) — the analogue of ``cudaStreamSynchronize`` /
        event waits in Algorithm 2.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest < 0:
            raise ValueError("earliest must be non-negative")
        start = max(self.busy_until, earliest)
        end = start + duration
        self.busy_until = end
        if self._breakdown is not None:
            self._breakdown.add(category, duration)
        if self._record_ops:
            self.ops.append(StreamOp(category, start, end))
        if self.observer is not None:
            self.observer(self, category, start, end, earliest)
        return Seconds(start), Seconds(end)

    def idle_before(self, time: float) -> Seconds:
        """How long this stream would sit idle until ``time`` (>= 0)."""
        return Seconds(max(0.0, time - self.busy_until))

    def leads(self, other: "Stream") -> bool:
        """Whether this stream's completion frontier is ahead of ``other``.

        The preemptive scheduler uses ``load.leads(compute)`` as its "the
        GPU would idle" condition: as long as the load stream finishes
        later than the compute stream, there is a window to fill.
        """
        return self.busy_until > other.busy_until


class Timeline:
    """The engine's three streams plus shared accounting.

    ``compute`` executes kernels; ``load`` carries host-to-device transfers
    (explicit partition/batch copies and the PCIe occupancy of zero-copy
    reads); ``evict`` carries device-to-host transfers.  PCIe is full
    duplex, so ``load`` and ``evict`` being separate streams models
    simultaneous loading and eviction without interference (§III-D).
    """

    COMPUTE = "compute"
    LOAD = "load"
    EVICT = "evict"

    def __init__(self, record_ops: bool = False) -> None:
        self.breakdown = TimeBreakdown()
        self.compute = Stream(self.COMPUTE, self.breakdown, record_ops)
        self.load = Stream(self.LOAD, self.breakdown, record_ops)
        self.evict = Stream(self.EVICT, self.breakdown, record_ops)

    @property
    def streams(self) -> Tuple[Stream, Stream, Stream]:
        return (self.compute, self.load, self.evict)

    def install_observer(self, observer: StreamObserver) -> None:
        """Attach one observer to every stream (one at a time)."""
        for stream in self.streams:
            if stream.observer is not None:
                raise RuntimeError(
                    f"stream {stream.name} already has an observer"
                )
            stream.observer = observer

    def remove_observer(self) -> None:
        for stream in self.streams:
            stream.observer = None

    @property
    def now(self) -> Seconds:
        """The makespan so far (max across streams)."""
        return Seconds(max(stream.busy_until for stream in self.streams))

    def total_time(self) -> Seconds:
        return self.now

    def validate(self) -> None:
        """Check per-stream ops never overlap (needs ``record_ops=True``)."""
        for stream in self.streams:
            prev_end = 0.0
            for op in stream.ops:
                if op.start + 1e-12 < prev_end:
                    raise AssertionError(
                        f"overlapping ops on stream {stream.name}: "
                        f"{op} starts before {prev_end}"
                    )
                prev_end = op.end
