"""Simulated GPU + PCIe substrate.

The paper's prototype runs on real NVIDIA GPUs; this reproduction runs on a
discrete-event *model* of one.  The substrate has four parts:

* :mod:`repro.gpu.device` — static device specs (SMs, cores, memories),
* :mod:`repro.gpu.pcie` — the CPU<->GPU interconnect (explicit copy and
  zero-copy cost models, full-duplex channels),
* :mod:`repro.gpu.timeline` — CUDA-stream-like simulated streams with
  per-category time accounting (the discrete-event core),
* :mod:`repro.gpu.memory` — block-based device memory pools
  (``cudaMalloc``-once semantics, §III-B),
* :mod:`repro.gpu.kernels` — analytic kernel cost models (walk update,
  two-level vs direct reshuffle, vertex-centric baseline kernels).

Walk *semantics* are executed for real elsewhere; this package only answers
"how long would that have taken on the modeled hardware, and what would it
have overlapped with".  All tunables live in :mod:`repro.gpu.calibration`.
"""

from repro.gpu.device import DeviceSpec, RTX3090, A100
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.pcie import PCIeSpec, PCIE3, PCIE4
from repro.gpu.timeline import Stream, Timeline, TimeBreakdown
from repro.gpu.memory import BlockPool, PoolFullError
from repro.gpu.kernels import KernelModel

__all__ = [
    "DeviceSpec",
    "RTX3090",
    "A100",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "PCIeSpec",
    "PCIE3",
    "PCIE4",
    "Stream",
    "Timeline",
    "TimeBreakdown",
    "BlockPool",
    "PoolFullError",
    "KernelModel",
]
