"""Every tunable cost constant of the simulated substrate, in one place.

The reproduction does not try to match the paper's absolute milliseconds
(different hardware, scaled datasets); it matches *shapes*: which system
wins, by roughly what factor, and where crossovers fall.  The constants below
were calibrated against the paper's reported anchor points:

* 128 MB partition loads in ~10.4 ms over PCIe 3.0 -> effective 12 GB/s
  (§II-B), which is the paper's own stated practical PCIe 3.0 bandwidth.
* The walk-update kernel is memory-bound; a GDDR6X-class GPU sustains a few
  billion random-access walk steps per second (paper's Fig 18 theory tops
  out at ``B/S_w`` = 1.5e9 steps/s for the *transfer*, so compute must be
  faster than that to be hidden -- §IV-D scalability analysis).
* Two-level reshuffling cuts reshuffle time by up to ~73 % vs direct global
  atomics (Fig 12); shared-memory atomics are ~20 cycles vs ~200 via L2
  (Figure 2), and the inverted map coalesces the global writes.
* Zero copy moves cache lines over PCIe at a fraction of the link bandwidth
  when access is random (§II-A); alpha = 256 bytes of zero-copy traffic per
  walk per iteration (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import Cycles, Seconds


@dataclass(frozen=True)
class Calibration:
    """Cost-model constants (times in seconds, sizes in bytes, costs in cycles)."""

    # --- simulation scale ----------------------------------------------
    #: The benchmark datasets are scaled-down twins of the paper's graphs
    #: (DESIGN.md §2).  Proportional scaling preserves every
    #: bandwidth-driven ratio automatically, but *fixed* per-op costs
    #: (kernel launches, memcpy calls, PCIe setup latency) and per-walk
    #: *latency* bounds would loom ~1/scale larger than at paper scale and
    #: distort the pipeline shapes.  ``sim_scale`` shrinks exactly those
    #: terms; throughput-style costs are never scaled.
    sim_scale: float = 1.0

    # --- kernel launch / driver ---------------------------------------
    #: Fixed cost of one kernel launch (driver + dispatch).
    kernel_launch_seconds: float = 5e-6
    #: Fixed driver-side cost of one cudaMemcpyAsync call.
    memcpy_call_seconds: float = 4e-6

    # --- walk-update kernel -------------------------------------------
    #: Baseline cycles for one walk step when the partition is cache-resident
    #: (RNG + offset lookup + edge gather + state update).
    step_cycles_base: float = 150.0
    #: Extra cycles per step once the partition far exceeds the L2 cache
    #: (poor locality of memory references; drives Fig 17's update curve).
    step_cycles_locality: float = 300.0
    #: Partition bytes / (locality_l2_multiple * l2_bytes) saturates the
    #: locality penalty.
    locality_l2_multiple: float = 8.0
    #: Bytes touched in device memory per walk step (offsets + edge + state);
    #: with random-access efficiency folded in, bounds step throughput by
    #: mem_bandwidth / bytes.
    step_bytes_effective: float = 160.0
    #: Fraction of peak device bandwidth achievable with random access.
    random_access_efficiency: float = 1.0

    # --- reshuffle (two-level caching vs direct write, Fig 12) ---------
    #: Per-walk cycles for the two-level path: shared-memory atomic (~20cy)
    #: + counting-sort share + coalesced global write.
    reshuffle_two_level_base_cycles: float = 50.0
    #: log2(P) term: findPartition binary search + local-index sort depth.
    reshuffle_two_level_log_cycles: float = 6.0
    #: Per-walk cycles for direct write: L2 atomic (~200cy) + uncoalesced
    #: global store.
    reshuffle_direct_base_cycles: float = 100.0
    #: Contention/scatter term that grows with the number of partitions
    #: (more distinct frontier targets -> more cache thrash), saturating.
    reshuffle_direct_scatter_cycles: float = 0.9
    reshuffle_direct_scatter_cap: int = 400
    #: Effective parallel lanes for reshuffling (SMs x warps in flight).
    reshuffle_parallel_lanes: int = 2048

    # --- zero copy (§III-E) ---------------------------------------------
    #: PCIe cache-line granularity.
    cacheline_bytes: int = 128
    #: alpha: average zero-copy bytes needed to finish one walk's computation
    #: in an iteration (paper's empirical 256 B).
    zero_copy_alpha_bytes: float = 256.0
    #: Effective fraction of link bandwidth achieved by random cache-line
    #: sized zero-copy reads.
    zero_copy_bandwidth_fraction: float = 0.25
    #: Ratio of the *actual* modeled zero-copy cost to the paper's alpha*w
    #: estimate: walks take ~1.5 steps per partition visit (two cache lines
    #: each) and random zero-copy reads run at a fraction of link bandwidth.
    #: The adaptive rule compares alpha * factor * w against S_p so that it
    #: selects the genuinely cheaper transfer path (the paper's stated rule
    #: assumes the estimate and the cost coincide).
    zero_copy_cost_factor: float = 6.0

    # --- transition sampling (ThunderRW's method comparison) ------------
    #: Extra cycles per walk step for each non-uniform transition-sampling
    #: method, added to ``step_cycles_base`` before the locality factor.
    #: Uniform sampling is the zero-extra baseline.  Alias pays one extra
    #: table gather + accept branch; inverse-transform pays an O(log d)
    #: binary search; rejection pays the expected proposal rounds; the
    #: second-order (node2vec) kernel additionally classifies each
    #: candidate against the previous vertex's adjacency.
    sampler_extra_cycles_alias: float = 24.0
    sampler_extra_cycles_inverse: float = 96.0
    sampler_extra_cycles_rejection: float = 210.0
    sampler_extra_cycles_second_order: float = 260.0

    # --- Subway-style baseline costs (Table I / Fig 3 / Fig 10) --------
    #: CPU-side cycles per scanned edge when generating the active subgraph.
    subway_subgraph_cycles_per_edge: float = 1.6
    #: CPU clock used for subgraph creation.
    cpu_clock_hz: float = 2.1e9
    #: Cycles for one walk step in Subway's vertex-centric kernel (no
    #: multi-step batching; re-reads per iteration).
    subway_step_cycles: float = 300.0  # per walk step, incl. divergence
    #: Serialization: one thread processes all walks at a vertex, so the
    #: kernel's critical path is max-walks-per-vertex steps.
    subway_lane_count: int = 128

    # --- NextDoor-style in-memory baseline (Fig 11) --------------------
    #: Per-step scheduling/caching overhead factor relative to LightTraffic's
    #: update kernel (NextDoor's transit-parallel bookkeeping).
    nextdoor_overhead_factor: float = 1.18

    def sampler_extra_cycles(self, sampler: str = "uniform") -> Cycles:
        """Extra per-step cycles of one transition-sampling method."""
        if sampler == "uniform":
            return Cycles(0.0)
        extra = getattr(self, f"sampler_extra_cycles_{sampler}", None)
        if extra is None:
            raise ValueError(f"no cost calibration for sampler {sampler!r}")
        return Cycles(extra)

    def step_cycles_for(self, sampler: str = "uniform") -> Cycles:
        """Per-step cycles of a sampling method, before the locality factor."""
        return Cycles(self.step_cycles_base + self.sampler_extra_cycles(sampler))

    @property
    def scaled_kernel_launch_seconds(self) -> Seconds:
        """Kernel launch cost at the configured simulation scale."""
        return Seconds(self.kernel_launch_seconds * self.sim_scale)

    @property
    def scaled_memcpy_call_seconds(self) -> Seconds:
        """memcpy-call cost at the configured simulation scale."""
        return Seconds(self.memcpy_call_seconds * self.sim_scale)

    def validate(self) -> None:
        """Sanity-check the constants (used by tests)."""
        numeric = (
            self.kernel_launch_seconds,
            self.memcpy_call_seconds,
            self.step_cycles_base,
            self.step_bytes_effective,
            self.zero_copy_alpha_bytes,
        )
        if any(v <= 0 for v in numeric):
            raise ValueError("calibration constants must be positive")
        sampler_extras = (
            self.sampler_extra_cycles_alias,
            self.sampler_extra_cycles_inverse,
            self.sampler_extra_cycles_rejection,
            self.sampler_extra_cycles_second_order,
        )
        if any(v < 0 for v in sampler_extras):
            raise ValueError("sampler extra cycles must be non-negative")
        if not 0 < self.zero_copy_bandwidth_fraction <= 1:
            raise ValueError("zero_copy_bandwidth_fraction must be in (0, 1]")
        if not 0 < self.random_access_efficiency <= 1:
            raise ValueError("random_access_efficiency must be in (0, 1]")
        if not 0 < self.sim_scale <= 1:
            raise ValueError("sim_scale must be in (0, 1]")


#: The calibration used everywhere unless a test overrides it.
DEFAULT_CALIBRATION = Calibration()
DEFAULT_CALIBRATION.validate()
