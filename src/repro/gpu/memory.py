"""Block-based device memory pools (paper §III-B, "Memory pool reservation").

CUDA kernels cannot ``realloc`` during execution, so LightTraffic reserves
two pools up front with ``cudaMalloc`` and manages them as caches of
fixed-size blocks: the *graph pool* (block = partition size) and the *walk
pool* (block = batch size).  :class:`BlockPool` models that contract:

* a fixed block budget, fully reserved at construction;
* ``insert`` fails with :class:`PoolFullError` instead of growing —
  eviction is the *caller's* decision (the scheduler picks victims);
* O(1) membership, plus iteration order = insertion order so a FIFO victim
  policy (the paper's baseline) is natural.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, List, Optional, Protocol, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class PoolObserver(Protocol):
    """Post-mutation hook contract (see :class:`repro.analysis.Sanitizer`).

    Pure observation: implementations must not touch the pool.
    """

    def pool_inserted(self, pool: "BlockPool", key: object) -> None: ...

    def pool_evicted(self, pool: "BlockPool", key: object) -> None: ...


class PoolFullError(RuntimeError):
    """Raised when inserting into a pool with no free block."""


class BlockPool(Generic[K, V]):
    """A fixed-capacity cache of equal-sized blocks keyed by ``K``.

    ``capacity`` counts blocks.  Values are whatever payload the caller
    associates with a cached block (a partition's arrays, a batch, ...).
    """

    def __init__(
        self, capacity: int, name: str = "pool", track_recency: bool = False
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.name = name
        self.track_recency = track_recency
        self._blocks: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: optional sanitizer hook, called after each mutation.
        self.observer: Optional[PoolObserver] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: K) -> bool:
        return key in self._blocks

    def __iter__(self) -> Iterator[K]:
        return iter(self._blocks)

    @property
    def free_blocks(self) -> int:
        return self.capacity - len(self._blocks)

    @property
    def is_full(self) -> bool:
        return len(self._blocks) >= self.capacity

    def keys(self) -> List[K]:
        """Cached keys in insertion (FIFO) order."""
        return list(self._blocks.keys())

    # ------------------------------------------------------------------
    def lookup(self, key: K) -> Optional[V]:
        """Hit-counting membership probe; returns payload or ``None``."""
        value = self._blocks.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.track_recency:
                self._blocks.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Membership probe *without* touching hit/miss counters."""
        return self._blocks.get(key)

    def insert(self, key: K, value: V) -> None:
        """Cache a block; raises :class:`PoolFullError` when no block is free."""
        if key in self._blocks:
            raise KeyError(f"{key!r} already cached in {self.name}")
        if self.is_full:
            raise PoolFullError(
                f"{self.name} is full ({self.capacity} blocks); evict first"
            )
        self._blocks[key] = value
        if self.observer is not None:
            self.observer.pool_inserted(self, key)

    def evict(self, key: K) -> V:
        """Remove and return a cached block's payload."""
        try:
            value = self._blocks.pop(key)
        except KeyError:
            raise KeyError(f"{key!r} not cached in {self.name}") from None
        if self.observer is not None:
            self.observer.pool_evicted(self, key)
        return value

    def fifo_victim(self) -> K:
        """The oldest cached key (the paper's baseline eviction policy).

        With ``track_recency`` enabled, hits refresh a key's position, so
        this degrades gracefully into an LRU victim.
        """
        if not self._blocks:
            raise KeyError(f"{self.name} is empty")
        return next(iter(self._blocks))

    # LRU is FIFO order over a recency-tracked pool.
    lru_victim = fifo_victim

    @property
    def hit_rate(self) -> float:
        """Fraction of ``lookup`` calls that hit (Table III metric)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BlockPool {self.name} {len(self._blocks)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.1%}>"
        )
