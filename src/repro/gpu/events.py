"""CUDA-event-like synchronization primitives for the simulated timeline.

Algorithm 2 adds "explicit synchronization between streams if data
dependency exists"; in CUDA that is ``cudaEventRecord`` on the producing
stream and ``cudaStreamWaitEvent`` on the consuming one.  The engine mostly
passes completion times around directly, but composite experiments (and
user code built on the substrate) get the same expressiveness here:

* :class:`Event` — records a point in a stream's op sequence,
* :meth:`Event.wait` — returns the release time a dependent op must honor,
* :func:`elapsed_between` — ``cudaEventElapsedTime`` analogue,
* :class:`StreamGroup` — barrier across streams (``cudaDeviceSynchronize``).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.gpu.timeline import Stream


class Event:
    """A recorded timestamp in a stream (``cudaEventRecord``)."""

    __slots__ = ("stream", "_time")

    def __init__(self, stream: Optional[Stream] = None) -> None:
        self.stream = stream
        self._time: Optional[float] = None
        if stream is not None:
            self.record(stream)

    def record(self, stream: Stream) -> "Event":
        """Capture the stream's current completion frontier."""
        self.stream = stream
        self._time = stream.busy_until
        return self

    @property
    def is_recorded(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> float:
        """The simulated time at which this event triggers."""
        if self._time is None:
            raise RuntimeError("event was never recorded")
        return self._time

    def wait(self) -> float:
        """Release time for a dependent op (``cudaStreamWaitEvent``).

        Use as the ``earliest`` argument of :meth:`Stream.schedule`.
        """
        return self.time

    def query(self, now: float) -> bool:
        """Whether the event has triggered by simulated time ``now``."""
        return self.is_recorded and self.time <= now


def elapsed_between(start: Event, end: Event) -> float:
    """Seconds between two recorded events (``cudaEventElapsedTime``)."""
    delta = end.time - start.time
    if delta < 0:
        raise ValueError("end event precedes start event")
    return delta


class StreamGroup:
    """A set of streams with device-wide synchronization semantics."""

    def __init__(self, streams: Iterable[Stream]) -> None:
        self.streams = list(streams)
        if not self.streams:
            raise ValueError("need at least one stream")

    def synchronize(self) -> float:
        """``cudaDeviceSynchronize``: time when every stream is drained."""
        return max(stream.busy_until for stream in self.streams)

    def barrier(self, category: str = "sync") -> float:
        """Insert a zero-duration barrier op into every stream.

        After the barrier, no stream can start new work before the group's
        synchronize time — modeling a device-wide join point.
        """
        release = self.synchronize()
        for stream in self.streams:
            stream.schedule(0.0, category, earliest=release)
        return release
