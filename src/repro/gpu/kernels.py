"""Analytic kernel cost models.

The walk-update kernel (Algorithm 1) is memory bound; its duration is the
maximum of a *latency* bound (the longest walk's serial chain of dependent
steps) and a *throughput* bound (total steps over the device's sustainable
step rate, itself the minimum of a compute-lane bound and a device-memory
bandwidth bound).  A locality factor raises the per-step cost as the
partition grows past the L2 cache, which is what makes walk updating slower
for large partitions in Fig 17.

The reshuffle model implements the Fig 12 comparison: the two-level path
(shared-memory local index + counting sort + coalesced frontier writes) has a
small per-walk cost growing with ``log2(P)`` (findPartition + sort depth),
while the direct-write path pays L2-latency atomics plus a scatter penalty
that grows with the number of partitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.units import Cycles, Seconds, StepsPerSecond
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import DeviceSpec

#: Reshuffle strategies (Fig 12).
TWO_LEVEL = "two_level"
DIRECT_WRITE = "direct"


@dataclass(frozen=True)
class KernelCost:
    """Decomposed cost of one walk-update kernel invocation."""

    update_seconds: float
    reshuffle_seconds: float
    other_seconds: float

    @property
    def total_seconds(self) -> Seconds:
        return Seconds(
            self.update_seconds + self.reshuffle_seconds + self.other_seconds
        )


class KernelModel:
    """Cost model bound to a device spec and calibration."""

    def __init__(
        self,
        device: DeviceSpec,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        calibration.validate()
        self.device = device
        self.calibration = calibration

    # ------------------------------------------------------------------
    # Walk update (Algorithm 1, lines 3-5)
    # ------------------------------------------------------------------
    def locality_factor(self, partition_bytes: int) -> float:
        """Per-step slowdown of large partitions (cache-unfriendly gathers)."""
        cal = self.calibration
        span = cal.locality_l2_multiple * self.device.l2_bytes
        pressure = min(1.0, partition_bytes / span)
        return 1.0 + (cal.step_cycles_locality / cal.step_cycles_base) * pressure

    def step_cycles(
        self, partition_bytes: int, sampler: str = "uniform"
    ) -> Cycles:
        """Cycles per walk step against a partition of the given size.

        ``sampler`` selects the transition-sampling method's per-step cost
        (:meth:`Calibration.step_cycles_for`); uniform adds exactly zero
        cycles, so the default is bit-identical to the historical model.
        """
        return Cycles(
            self.calibration.step_cycles_for(sampler)
            * self.locality_factor(partition_bytes)
        )

    def steps_per_second(
        self, partition_bytes: int, sampler: str = "uniform"
    ) -> StepsPerSecond:
        """Sustainable device-wide step throughput for a partition size."""
        cal = self.calibration
        cycles = self.step_cycles(partition_bytes, sampler)
        compute_bound = (
            self.device.total_cores * self.device.clock_hz / cycles
        )
        memory_bound = (
            self.device.mem_bandwidth
            * cal.random_access_efficiency
            / cal.step_bytes_effective
        ) / self.locality_factor(partition_bytes)
        return StepsPerSecond(min(compute_bound, memory_bound))

    def update_time(
        self,
        total_steps: int,
        longest_run: int,
        partition_bytes: int,
        sampler: str = "uniform",
    ) -> Seconds:
        """Duration of updating one batch.

        Parameters
        ----------
        total_steps:
            steps executed across all walks in the batch this invocation.
        longest_run:
            the maximum steps any single walk took (serial dependent chain).
        partition_bytes:
            size of the graph partition being walked (locality model).
        sampler:
            active transition-sampling method (per-step cost entry).
        """
        if total_steps < 0 or longest_run < 0:
            raise ValueError("step counts must be non-negative")
        if total_steps == 0:
            return Seconds(0.0)
        # The latency bound is a fixed-size term (per-walk dependent chain),
        # so it shrinks with sim_scale like the other fixed costs.
        latency_bound = self.calibration.sim_scale * self.device.cycles_to_seconds(
            longest_run * self.step_cycles(partition_bytes, sampler)
        )
        throughput_bound = total_steps / self.steps_per_second(
            partition_bytes, sampler
        )
        return Seconds(max(latency_bound, throughput_bound))

    # ------------------------------------------------------------------
    # Reshuffle (Algorithm 1, lines 6-14; Fig 12)
    # ------------------------------------------------------------------
    def reshuffle_serial_seconds(
        self, num_partitions: int, mode: str = TWO_LEVEL
    ) -> Seconds:
        """Single-lane duration of reshuffling one walk.

        This is *the* per-walk cost formula; both :meth:`reshuffle_time`
        and the reshufflers' hot path (`_BaseReshuffler.seconds_for`) scale
        it by ``num_walks / lanes`` so the two can never drift.
        """
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        cal = self.calibration
        if mode == TWO_LEVEL:
            per_walk = cal.reshuffle_two_level_base_cycles
            per_walk += cal.reshuffle_two_level_log_cycles * math.log2(
                max(2, num_partitions)
            )
        elif mode == DIRECT_WRITE:
            per_walk = cal.reshuffle_direct_base_cycles
            per_walk += cal.reshuffle_direct_scatter_cycles * min(
                num_partitions, cal.reshuffle_direct_scatter_cap
            )
        else:
            raise ValueError(f"unknown reshuffle mode {mode!r}")
        return self.device.cycles_to_seconds(per_walk)

    def reshuffle_time(
        self, num_walks: int, num_partitions: int, mode: str = TWO_LEVEL
    ) -> Seconds:
        """Duration of inserting ``num_walks`` updated walks into frontiers."""
        if num_walks < 0:
            raise ValueError("num_walks must be non-negative")
        if num_walks == 0:
            if num_partitions < 1:
                raise ValueError("num_partitions must be >= 1")
            return Seconds(0.0)
        serial = self.reshuffle_serial_seconds(num_partitions, mode)
        lanes = min(num_walks, self.calibration.reshuffle_parallel_lanes)
        return Seconds(num_walks * serial / lanes)

    # ------------------------------------------------------------------
    # Full kernel
    # ------------------------------------------------------------------
    def kernel_cost(
        self,
        total_steps: int,
        longest_run: int,
        num_walks: int,
        num_partitions: int,
        partition_bytes: int,
        reshuffle_mode: str = TWO_LEVEL,
        sampler: str = "uniform",
    ) -> KernelCost:
        """Cost of one walk-update-and-reshuffle kernel (Algorithm 1)."""
        return KernelCost(
            update_seconds=self.update_time(
                total_steps, longest_run, partition_bytes, sampler
            ),
            reshuffle_seconds=self.reshuffle_time(
                num_walks, num_partitions, reshuffle_mode
            ),
            other_seconds=self.calibration.scaled_kernel_launch_seconds,
        )

    # ------------------------------------------------------------------
    # Vertex-centric baseline kernel (Subway, Fig 10)
    # ------------------------------------------------------------------
    def vertex_centric_time(
        self, total_steps: int, max_walks_per_vertex: int
    ) -> Seconds:
        """One Subway-style iteration kernel: one thread per active vertex.

        Walks co-located on a vertex are processed serially by that vertex's
        thread, so the critical path is ``max_walks_per_vertex`` steps; this
        is the load imbalance §IV-B attributes Subway's compute gap to.
        """
        if total_steps == 0:
            return Seconds(0.0)
        cal = self.calibration
        # max_walks_per_vertex already shrinks with the dataset scale (it is
        # proportional to the walk count), so no sim_scale here.
        latency_bound = self.device.cycles_to_seconds(
            max_walks_per_vertex * cal.subway_step_cycles
        )
        throughput_bound = self.device.cycles_to_seconds(
            total_steps * cal.subway_step_cycles / cal.subway_lane_count
        )
        return Seconds(max(latency_bound, throughput_bound))


# ----------------------------------------------------------------------
# Cross-validation of the analytic model against measured backends
# ----------------------------------------------------------------------
def fit_time_scale(
    predicted: Sequence[float], measured: Sequence[float]
) -> float:
    """Least-squares scale ``lambda`` minimizing ``|lambda*pred - meas|^2``.

    The analytic :class:`KernelModel` predicts *simulated GPU* seconds;
    a real backend measures *host wall-clock* seconds.  The two live on
    different absolute scales, so cross-validation first fits the single
    free factor ``lambda = sum(pred*meas) / sum(pred^2)`` and then judges
    the model by the residual per-kernel relative error
    (:func:`relative_errors`) — i.e. by *shape*, not absolute magnitude.
    """
    if len(predicted) != len(measured):
        raise ValueError("predicted and measured must align")
    num = 0.0
    den = 0.0
    for pred, meas in zip(predicted, measured):
        num += pred * meas
        den += pred * pred
    if den <= 0.0:
        return 0.0
    return num / den


def relative_errors(
    predicted: Sequence[float],
    measured: Sequence[float],
    scale: float,
) -> List[float]:
    """Per-kernel ``|scale*pred - meas| / meas`` (skips meas <= 0)."""
    if len(predicted) != len(measured):
        raise ValueError("predicted and measured must align")
    errors: List[float] = []
    for pred, meas in zip(predicted, measured):
        if meas <= 0.0:
            continue
        errors.append(abs(scale * pred - meas) / meas)
    return errors
