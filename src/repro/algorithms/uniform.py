"""Uniform sampling: fixed-length uniform-neighbor walks (§IV-A).

Walks start uniformly at all vertices (walk ``k`` starts at vertex
``k mod |V|``, matching "2|V| walks started uniformly at all vertices") and
take exactly ``length`` steps.  The walk index carries ``walk_id`` so that
sampled paths can be shipped to a consumer; optional in-process path
recording is provided for small runs (examples/tests) — the paper assumes
paths are transferred to other GPUs and does not store them.

Weighted next-hop selection is delegated to the transition-sampler
registry (:mod:`repro.algorithms.transitions`): any registered sampler
(``alias``, ``inverse``, ``rejection``, ``uniform``) can be selected per
instance or via ``EngineConfig.sampler`` / ``repro run --sampler``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.algorithms.transitions import (
    SAMPLER_ALIAS,
    SAMPLER_REJECTION,
    SAMPLER_UNIFORM,
    make_sampler,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


class UniformSampling(RandomWalkAlgorithm):
    """Fixed-length uniform random walks (DeepWalk-style sampling)."""

    name = "uniform"
    carries_walk_id = True

    #: legacy aliases for the registry's sampler names (§II-A mentions both).
    SAMPLER_ALIAS = SAMPLER_ALIAS
    SAMPLER_REJECTION = SAMPLER_REJECTION

    def __init__(
        self,
        length: int = 80,
        record_paths: bool = False,
        weighted: bool = False,
        sampler: str = SAMPLER_ALIAS,
        max_reject_rounds: int = 64,
    ) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        self.length = length
        self.record_paths = record_paths
        self.weighted = weighted
        self.max_reject_rounds = max_reject_rounds
        self.paths: Optional[np.ndarray] = None
        self.set_transition_sampler(sampler)

    # ------------------------------------------------------------------
    def set_transition_sampler(self, name: str) -> None:
        """Select the weighted next-hop sampler from the registry."""
        if name == SAMPLER_REJECTION:
            impl = make_sampler(name, max_rounds=self.max_reject_rounds)
        else:
            impl = make_sampler(name)
        self.sampler = name
        self._sampler_impl = impl
        # Cost-model identity: unweighted walks always step uniformly.
        self.transition_sampler = name if self.weighted else SAMPLER_UNIFORM
        self.uses_subset_draws = self.weighted and impl.subset_draws

    def consume_sampler_fallbacks(self) -> int:
        return self._sampler_impl.consume_fallbacks()

    # ------------------------------------------------------------------
    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        starts = np.arange(num_walks, dtype=np.int64) % graph.num_vertices
        if self.record_paths:
            self.paths = np.full(
                (num_walks, self.length + 1), -1, dtype=np.int64
            )
        return starts

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        if self.paths is not None:
            self.paths[walks.ids, 0] = walks.vertices

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if (
            self.weighted
            and partition.weights is not None
            and self.sampler != SAMPLER_UNIFORM
        ):
            new_v, dead_end = self._sampler_impl.sample(
                partition, vertices, rng
            )
        else:
            new_v, dead_end = uniform_neighbors(partition, vertices, rng)
        terminated = dead_end | (steps + 1 >= self.length)
        if self.paths is not None:
            self.paths[ids, steps + 1] = new_v
        return new_v, terminated

    def expected_total_steps(self, num_walks: int) -> float:
        return float(num_walks) * self.length
