"""Uniform sampling: fixed-length uniform-neighbor walks (§IV-A).

Walks start uniformly at all vertices (walk ``k`` starts at vertex
``k mod |V|``, matching "2|V| walks started uniformly at all vertices") and
take exactly ``length`` steps.  The walk index carries ``walk_id`` so that
sampled paths can be shipped to a consumer; optional in-process path
recording is provided for small runs (examples/tests) — the paper assumes
paths are transferred to other GPUs and does not store them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.algorithms.sampling import PartitionAliasSampler
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


class UniformSampling(RandomWalkAlgorithm):
    """Fixed-length uniform random walks (DeepWalk-style sampling)."""

    name = "uniform"
    carries_walk_id = True

    #: weighted-sampling strategies (§II-A mentions both).
    SAMPLER_ALIAS = "alias"
    SAMPLER_REJECTION = "rejection"

    def __init__(
        self,
        length: int = 80,
        record_paths: bool = False,
        weighted: bool = False,
        sampler: str = SAMPLER_ALIAS,
        max_reject_rounds: int = 64,
    ) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        if sampler not in (self.SAMPLER_ALIAS, self.SAMPLER_REJECTION):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.length = length
        self.record_paths = record_paths
        self.weighted = weighted
        self.sampler = sampler
        self.max_reject_rounds = max_reject_rounds
        self.paths: Optional[np.ndarray] = None
        self._alias_cache = {}
        self._max_weight_cache = {}

    # ------------------------------------------------------------------
    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        starts = np.arange(num_walks, dtype=np.int64) % graph.num_vertices
        if self.record_paths:
            self.paths = np.full(
                (num_walks, self.length + 1), -1, dtype=np.int64
            )
        return starts

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        if self.paths is not None:
            self.paths[walks.ids, 0] = walks.vertices

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.weighted and partition.weights is not None:
            new_v, dead_end = self._weighted_neighbors(partition, vertices, rng)
        else:
            new_v, dead_end = uniform_neighbors(partition, vertices, rng)
        terminated = dead_end | (steps + 1 >= self.length)
        if self.paths is not None:
            self.paths[ids, steps + 1] = new_v
        return new_v, terminated

    def _weighted_neighbors(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.sampler == self.SAMPLER_REJECTION:
            return self._rejection_neighbors(partition, vertices, rng)
        sampler = self._alias_cache.get(partition.index)
        if sampler is None:
            sampler = PartitionAliasSampler(partition.offsets, partition.weights)
            self._alias_cache[partition.index] = sampler
        local = vertices - partition.start
        edge_idx = sampler.sample_local(local, rng)
        dead_end = edge_idx < 0
        safe = np.where(dead_end, 0, edge_idx)
        new_v = partition.targets[safe]
        return np.where(dead_end, vertices, new_v), dead_end

    def _rejection_neighbors(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted pick via rejection: propose uniform, accept w/w_max.

        No per-vertex preprocessing (unlike alias tables), at the cost of a
        few proposal rounds — the time/space trade-off §II-A alludes to.
        """
        max_w = self._max_weight_cache.get(partition.index)
        if max_w is None:
            # Per-vertex maximum edge weight (vectorized segment max).
            max_w = np.zeros(partition.num_vertices, dtype=np.float64)
            np.maximum.at(
                max_w,
                np.repeat(
                    np.arange(partition.num_vertices),
                    np.diff(partition.offsets),
                ),
                partition.weights,
            )
            self._max_weight_cache[partition.index] = max_w
        local = vertices - partition.start
        starts = partition.offsets[local]
        degrees = partition.offsets[local + 1] - starts
        dead_end = degrees == 0
        result = np.where(dead_end, vertices, vertices)
        pending = ~dead_end
        ceiling = max_w[local]
        for __ in range(self.max_reject_rounds):
            if not pending.any():
                break
            idx = np.nonzero(pending)[0]
            pick = (rng.random(idx.size) * degrees[idx]).astype(np.int64)
            edge = starts[idx] + np.minimum(pick, degrees[idx] - 1)
            accept = (
                rng.random(idx.size) * ceiling[idx]
                < partition.weights[edge]
            )
            result[idx[accept]] = partition.targets[edge[accept]]
            pending[idx[accept]] = False
        if pending.any():  # accept the last proposal after the round cap
            idx = np.nonzero(pending)[0]
            pick = (rng.random(idx.size) * degrees[idx]).astype(np.int64)
            edge = starts[idx] + np.minimum(pick, degrees[idx] - 1)
            result[idx] = partition.targets[edge]
        return result, dead_end

    def expected_total_steps(self, num_walks: int) -> float:
        return float(num_walks) * self.length
