"""Algorithm protocol and the shared in-partition kernel loop.

The engine is *walk-centric* (§IV-B): a batch of walks is assigned to the
kernel together with its graph partition, and each walk keeps stepping until
it either terminates or leaves the partition (at which point it must wait
for another partition, Figure 1).  That multi-step-per-kernel behaviour is
implemented once in :meth:`RandomWalkAlgorithm.advance_in_partition`;
concrete algorithms only define a vectorized ``step_once``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


@dataclass(frozen=True)
class BatchRunResult:
    """Outcome of running one batch against one partition.

    Attributes
    ----------
    total_steps:
        walk steps executed by this kernel invocation.
    longest_run:
        max steps any single walk took (the kernel's serial critical path).
    active:
        boolean mask over the batch: walks still alive (not terminated).
        Alive walks have necessarily left the partition.
    """

    total_steps: int
    longest_run: int
    active: np.ndarray


def uniform_neighbors(
    partition: GraphPartition,
    vertices: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick one uniform neighbor for each vertex (vectorized).

    Returns ``(next_vertices, dead_end)`` where ``dead_end[i]`` marks
    vertices with no out-edges (their ``next_vertices`` entry is the vertex
    itself).  All ``vertices`` must lie inside ``partition``.
    """
    local = vertices - partition.start
    starts = partition.offsets[local]
    degrees = partition.offsets[local + 1] - starts
    dead_end = degrees == 0
    # rng.random() < 1.0 strictly, so floor(r * deg) <= deg - 1; the minimum
    # clamp only guards the deg == 0 placeholder.
    pick = (rng.random(vertices.size) * degrees).astype(np.int64)
    safe = np.where(dead_end, 0, starts + np.minimum(pick, degrees - 1))
    next_vertices = partition.targets[safe]
    return np.where(dead_end, vertices, next_vertices), dead_end


class RandomWalkAlgorithm(abc.ABC):
    """Base class for random walk applications.

    Subclasses implement :meth:`step_once` (one vectorized step for a set of
    walks all located in one partition) and may override :meth:`observe` to
    maintain application state (visit frequencies, sampled paths).
    """

    #: human-readable algorithm name (used in reports).
    name: str = "walk"
    #: whether the walk index carries a walk_id (affects ``S_w``, §IV-A).
    carries_walk_id: bool = False
    #: whether every walk has the same, known length (FlashMob supports only
    #: fixed-length walks, §IV-B).
    fixed_length: bool = True
    #: cost-model key of the active next-hop sampling method
    #: (:meth:`repro.gpu.calibration.Calibration.step_cycles_for`).
    transition_sampler: str = "uniform"
    #: whether stepping redraws data-dependent lane subsets — incompatible
    #: with the counter RNG's all-lanes draw contract.
    uses_subset_draws: bool = False

    # ------------------------------------------------------------------
    def set_transition_sampler(self, name: str) -> None:
        """Select the transition sampler (``EngineConfig.sampler`` hook)."""
        raise ValueError(
            f"algorithm {self.name!r} does not support configurable "
            f"transition samplers"
        )

    def consume_sampler_fallbacks(self) -> int:
        """Return and clear rejection-saturation counts since the last call."""
        return 0

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        """The paper's ``S_w``: 8 B state, +8 B when walk_id is carried."""
        return 16 if self.carries_walk_id else 8

    @abc.abstractmethod
    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Initial vertex of each walk."""

    @abc.abstractmethod
    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the given walks one step.

        ``steps`` holds pre-increment counts.  Returns ``(new_vertices,
        terminated)``; the caller increments ``walked_steps`` and handles
        partition crossings.
        """

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        """Hook called once with the freshly initialized walks."""

    def observe(
        self,
        vertices: np.ndarray,
        ids: np.ndarray,
        terminated: np.ndarray,
    ) -> None:
        """Hook called after each vectorized step with the new positions."""

    def expected_total_steps(self, num_walks: int) -> Optional[float]:
        """Analytic expected step count, when known (used by CPU models)."""
        return None

    # ------------------------------------------------------------------
    def advance_in_partition(
        self,
        partition: GraphPartition,
        walks: WalkArrays,
        rng: np.random.Generator,
        graph: Optional[CSRGraph] = None,
    ) -> BatchRunResult:
        """Run every walk of a batch until it terminates or exits ``partition``.

        Mutates ``walks`` in place (vertices and steps).  This is the
        semantic core of the walk-updating kernel (Algorithm 1, line 4).
        """
        n = len(walks)
        if n == 0:
            return BatchRunResult(0, 0, np.zeros(0, dtype=bool))
        alive = np.ones(n, dtype=bool)
        # Walks still stepping (alive AND inside the partition).
        idx = np.arange(n, dtype=np.int64)
        total_steps = 0
        rounds = 0
        set_context = getattr(rng, "set_context", None)
        while idx.size:
            ids = walks.ids[idx]
            if set_context is not None:
                set_context(ids, walks.steps[idx])
            new_v, terminated = self.step_once(
                walks.vertices[idx],
                walks.steps[idx],
                ids,
                partition,
                rng,
                graph,
            )
            walks.vertices[idx] = new_v
            walks.steps[idx] += 1
            total_steps += int(idx.size)
            rounds += 1
            self.observe(new_v, ids, terminated)
            if terminated.any():
                alive[idx[terminated]] = False
            keep = (
                ~terminated
                & (new_v >= partition.start)
                & (new_v < partition.stop)
            )
            idx = idx[keep]
        # Every walk surviving round k has taken exactly k steps, so the
        # longest serial chain equals the number of rounds.
        return BatchRunResult(total_steps, rounds, alive)
