"""PageRank via random walk with restart (§IV-A).

Each walk has a fixed length ``l``; at each step it restarts at a uniformly
random vertex with probability ``p`` (default 0.15), otherwise moves to a
uniform neighbor.  Per-vertex visit frequencies (stored in GPU memory in the
paper) are the Monte-Carlo PageRank estimate; :meth:`pagerank_scores`
normalizes them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


class PageRank(RandomWalkAlgorithm):
    """Random walk with restart; visit frequencies estimate PageRank."""

    name = "pagerank"
    carries_walk_id = False

    def __init__(self, length: int = 80, restart_prob: float = 0.15) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        if not 0 <= restart_prob < 1:
            raise ValueError("restart_prob must be in [0, 1)")
        self.length = length
        self.restart_prob = restart_prob
        self.visit_counts: Optional[np.ndarray] = None
        self._num_vertices = 0

    # ------------------------------------------------------------------
    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        self._num_vertices = graph.num_vertices
        self.visit_counts = np.zeros(graph.num_vertices, dtype=np.int64)
        return np.arange(num_walks, dtype=np.int64) % graph.num_vertices

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        np.add.at(self.visit_counts, walks.vertices, 1)

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        neighbor, dead_end = uniform_neighbors(partition, vertices, rng)
        restart = rng.random(vertices.size) < self.restart_prob
        # Dead ends behave like a forced restart (dangling-vertex handling).
        restart |= dead_end
        random_targets = rng.integers(
            0, self._num_vertices, size=vertices.size, dtype=np.int64
        )
        new_v = np.where(restart, random_targets, neighbor)
        terminated = steps + 1 >= self.length
        return new_v, terminated

    def observe(
        self, vertices: np.ndarray, ids: np.ndarray, terminated: np.ndarray
    ) -> None:
        np.add.at(self.visit_counts, vertices, 1)

    # ------------------------------------------------------------------
    def pagerank_scores(self) -> np.ndarray:
        """Visit frequencies normalized to a probability vector."""
        if self.visit_counts is None:
            raise RuntimeError("run the algorithm before reading scores")
        total = self.visit_counts.sum()
        if total == 0:
            return np.zeros_like(self.visit_counts, dtype=np.float64)
        return self.visit_counts / total

    def expected_total_steps(self, num_walks: int) -> float:
        return float(num_walks) * self.length


def power_iteration_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    iterations: int = 100,
    tol: float = 1e-12,
) -> np.ndarray:
    """Reference PageRank by power iteration (for accuracy tests).

    ``damping = 1 - restart_prob``; dangling vertices redistribute uniformly,
    matching the walker's forced-restart behaviour.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    degrees = graph.degrees().astype(np.float64)
    dangling = degrees == 0
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    rank = np.full(n, 1.0 / n)
    for _ in range(iterations):
        contrib = np.zeros(n)
        weights = rank[sources] / degrees[sources]
        np.add.at(contrib, graph.targets, weights)
        dangling_mass = rank[dangling].sum()
        new_rank = (1 - damping) / n + damping * (contrib + dangling_mass / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank / rank.sum()
