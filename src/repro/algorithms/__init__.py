"""Random walk algorithms (paper §IV-A).

Three algorithms drive the paper's evaluation and are implemented here with
identical semantics:

* **Uniform sampling** — walks start uniformly at all vertices and take
  exactly ``l`` uniform-neighbor steps; the walk index additionally carries
  ``walk_id`` so sampled paths can be attributed.
* **PageRank** — random walk with restart: at each step the walk jumps to a
  uniformly random vertex with probability ``p`` (default 0.15), otherwise
  moves to a uniform neighbor; fixed length ``l``; per-vertex visit
  frequencies are the PageRank estimate.
* **PPR** — personalized PageRank: all walks start at one source vertex and
  terminate with probability ``p`` at each step (geometric length); visit
  frequencies estimate the PPR vector.

:class:`~repro.algorithms.node2vec.Node2Vec` is an extension beyond the
paper (second-order walks via rejection sampling); weighted-graph neighbor
selection via alias tables / rejection sampling lives in
:mod:`repro.algorithms.sampling`.
"""

from repro.algorithms.base import (
    BatchRunResult,
    RandomWalkAlgorithm,
    uniform_neighbors,
)
from repro.algorithms.uniform import UniformSampling
from repro.algorithms.pagerank import PageRank
from repro.algorithms.ppr import (
    PersonalizedPageRank,
    SeedSetPersonalizedPageRank,
)
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.metapath import MetapathWalk, random_vertex_types
from repro.algorithms.sampling import AliasTable, rejection_sample

__all__ = [
    "RandomWalkAlgorithm",
    "BatchRunResult",
    "uniform_neighbors",
    "UniformSampling",
    "PageRank",
    "PersonalizedPageRank",
    "SeedSetPersonalizedPageRank",
    "Node2Vec",
    "MetapathWalk",
    "random_vertex_types",
    "AliasTable",
    "rejection_sample",
]
