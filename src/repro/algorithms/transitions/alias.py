"""Weighted-alias sampling with a fully vectorized Vose build.

:class:`repro.algorithms.sampling.AliasTable` builds one table per vertex
with Python list stacks — O(E_p) *interpreter* operations per partition.
:func:`build_alias_tables` runs the same Vose construction for every vertex
of a partition simultaneously over the flattened edge array.

The scalar algorithm's small/large stacks admit a lock-step treatment: the
initial stacks are ascending index ranges consumed from the top, and the
element pushed back after a pairing always sits on top of its stack, so it
is consumed again in the *next* iteration (each iteration pops from both
stacks).  Hence at most one "in-flight" element exists per vertex at any
time, and the whole stack state is (pointer into the original small run,
pointer into the original large run, the single pushed element).  Each
vectorized round performs exactly one scalar-loop iteration for every
still-active vertex, replicating the scalar operation order bit-for-bit;
rounds are bounded by the maximum degree.

Floating-point caveat: per-vertex weight totals come from one global
``cumsum`` rather than per-slice ``np.sum`` (pairwise), so for general
float weights the normalization may differ from the scalar build in the
last ulp.  For integer-valued weights (exact in float64) the two builds are
bit-identical — the golden parity tests pin exactly that.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.algorithms.transitions.base import TransitionSampler
from repro.algorithms.transitions.registry import (
    SAMPLER_ALIAS,
    register_sampler,
)
from repro.graph.partition import GraphPartition


def build_alias_tables(
    offsets: np.ndarray, weights: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-vertex Vose tables over a flattened edge array.

    Returns ``(prob_flat, alias_flat)`` matching
    :class:`~repro.algorithms.sampling.PartitionAliasSampler`'s layout:
    ``alias_flat`` holds *within-vertex* slot indices.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    num_edges = int(offsets[-1]) if offsets.size else 0
    prob = np.ones(num_edges, dtype=np.float64)
    alias = np.zeros(num_edges, dtype=np.int64)
    if num_edges == 0:
        return prob, alias
    if weights.size != num_edges:
        raise ValueError("weights must cover every edge of the partition")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and non-negative")

    num_vertices = offsets.size - 1
    degrees = np.diff(offsets)
    seg_id = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    seg_start = np.repeat(offsets[:-1], degrees)
    alias = np.arange(num_edges, dtype=np.int64) - seg_start

    csum = np.concatenate(([0.0], np.cumsum(weights)))
    totals = csum[offsets[1:]] - csum[offsets[:-1]]
    if np.any((degrees > 0) & (totals <= 0)):
        raise ValueError("per-vertex weights must sum to a positive value")
    ratio = np.divide(
        degrees.astype(np.float64),
        totals,
        out=np.zeros(num_vertices, dtype=np.float64),
        where=degrees > 0,
    )
    scaled = weights * ratio[seg_id]

    # Original stacks: ascending edge indices, consumed from the top.
    is_small = scaled < 1.0
    small_counts = np.bincount(seg_id[is_small], minlength=num_vertices)
    large_counts = degrees - small_counts
    smalls = np.flatnonzero(is_small)
    larges = np.flatnonzero(~is_small)
    small_base = np.concatenate(([0], np.cumsum(small_counts)[:-1]))
    large_base = np.concatenate(([0], np.cumsum(large_counts)[:-1]))
    sp = small_counts.copy()  # per-vertex stack sizes
    lp = large_counts.copy()
    pushed = np.full(num_vertices, -1, dtype=np.int64)
    pushed_small = np.zeros(num_vertices, dtype=bool)

    while True:
        has_pushed = pushed >= 0
        n_small = sp + (has_pushed & pushed_small)
        n_large = lp + (has_pushed & ~pushed_small)
        active = (n_small > 0) & (n_large > 0)
        if not active.any():
            break
        seg = np.flatnonzero(active)
        seg_pushed = pushed[seg]
        push_is_small = (seg_pushed >= 0) & pushed_small[seg]
        push_is_large = (seg_pushed >= 0) & ~pushed_small[seg]
        # s <- top of small stack (the pushed element when it is small).
        stack_s = smalls[np.maximum(small_base[seg] + sp[seg] - 1, 0)]
        s = np.where(push_is_small, seg_pushed, stack_s)
        sp[seg] = np.where(push_is_small, sp[seg], sp[seg] - 1)
        # g <- top of large stack (the pushed element when it is large).
        stack_g = larges[np.maximum(large_base[seg] + lp[seg] - 1, 0)]
        g = np.where(push_is_large, seg_pushed, stack_g)
        lp[seg] = np.where(push_is_large, lp[seg], lp[seg] - 1)
        # One Vose pairing per active vertex, scalar operation order.
        prob[s] = scaled[s]
        alias[s] = g - offsets[seg]
        scaled[g] = (scaled[g] + scaled[s]) - 1.0
        pushed[seg] = g
        pushed_small[seg] = scaled[g] < 1.0
    # Leftover entries keep prob == 1.0 and alias == self (the init values),
    # exactly what the scalar loop writes for its residual small+large.
    return prob, alias


class AliasTransition(TransitionSampler):
    """O(1)-per-draw weighted pick from flattened per-vertex alias tables.

    Sampling issues the same (slot, accept) draw pair as
    :meth:`~repro.algorithms.sampling.PartitionAliasSampler.sample_local` —
    two all-lanes ``rng.random`` calls, compatible with the counter RNG.
    """

    name = SAMPLER_ALIAS
    needs_weights = True

    def _build(self, partition: GraphPartition) -> Any:
        weights = self._require_weights(partition)
        return build_alias_tables(partition.offsets, weights)

    def sample(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        prob_flat, alias_flat = self.prepare(partition)
        n = vertices.size
        if prob_flat.size == 0:  # partition with no edges at all
            return vertices.copy(), np.ones(n, dtype=bool)
        local = vertices - partition.start
        starts = partition.offsets[local]
        degrees = partition.offsets[local + 1] - starts
        dead_end = degrees == 0
        slot = (rng.random(n) * degrees).astype(np.int64)
        slot = np.minimum(slot, np.maximum(degrees - 1, 0))
        safe_edge = np.where(dead_end, 0, starts + slot)
        accept = rng.random(n) < prob_flat[safe_edge]
        picked = np.where(accept, slot, alias_flat[safe_edge])
        safe_out = np.where(dead_end, 0, starts + picked)
        next_vertices = partition.targets[safe_out]
        return np.where(dead_end, vertices, next_vertices), dead_end


register_sampler(SAMPLER_ALIAS, AliasTransition)
