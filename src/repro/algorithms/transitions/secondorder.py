"""Second-order (node2vec) acceptance without per-candidate ``has_edge``.

The node2vec rejection sampler classifies each proposed candidate against
the walk's *previous* vertex: return (distance 0), common neighbor
(distance 1) or outward (distance 2).  The distance-1 test is an edge-
existence query ``(prev, candidate)``; the historical implementation
(`Node2Vec._acceptance`) issued one Python-level ``graph.has_edge`` call
per candidate.  :func:`csr_edges_exist` answers a whole batch with a
lock-step binary search over the sorted CSR rows: all lanes carry their
own ``[lo, hi)`` range and halve it together, so a batch costs
O(log d_max) vectorized rounds instead of |batch| interpreter round trips.

Rows are sorted by the repo's graph builders; sortedness is verified once
per graph and the per-candidate ``has_edge`` loop is kept as the fallback
for hand-built unsorted inputs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.transitions.registry import SAMPLER_SECOND_ORDER
from repro.graph.csr import CSRGraph


def csr_edges_exist(
    offsets: np.ndarray,
    targets: np.ndarray,
    sources: np.ndarray,
    queries: np.ndarray,
) -> np.ndarray:
    """Vectorized membership test: is ``queries[i]`` in row ``sources[i]``?

    Requires every CSR row to be sorted ascending.  All lanes binary-search
    their own row in lock step.
    """
    lo = offsets[sources].astype(np.int64)
    hi = offsets[sources + 1].astype(np.int64)
    row_end = hi.copy()
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        vals = targets[np.where(active, mid, 0)]
        go_right = active & (vals < queries)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    found = lo < row_end
    found &= targets[np.where(found, lo, 0)] == queries
    return found


def rows_sorted(offsets: np.ndarray, targets: np.ndarray) -> bool:
    """Whether every CSR row's neighbor list is sorted ascending."""
    if targets.size < 2:
        return True
    nondecreasing = targets[1:] >= targets[:-1]
    # Positions where a new row starts are exempt from the comparison.
    boundary = np.zeros(targets.size - 1, dtype=bool)
    inner = offsets[1:-1]
    inner = inner[(inner > 0) & (inner < targets.size)]
    boundary[inner - 1] = True
    return bool(np.all(nondecreasing | boundary))


class SecondOrderAcceptance:
    """Batched node2vec acceptance probabilities.

    Not a first-order :class:`TransitionSampler` (it needs each walk's
    previous vertex), but it shares the cost-model namespace under
    ``"second_order"``.  Produces values identical to the historical
    per-element loop: the branch constants are precomputed scalars, so
    only the edge-existence test changes implementation.
    """

    name = SAMPLER_SECOND_ORDER

    def __init__(self, return_param: float, inout_param: float) -> None:
        if return_param <= 0 or inout_param <= 0:
            raise ValueError("p and q must be positive")
        self.w_return = 1.0 / return_param
        self.w_inout = 1.0 / inout_param
        self.ceiling = max(1.0, self.w_return, self.w_inout)
        self._sorted_for = None  # (graph, rows_sorted) of the last graph seen

    def _graph_rows_sorted(self, graph: CSRGraph) -> bool:
        cached = self._sorted_for
        if cached is not None and cached[0] is graph:
            return cached[1]
        flag = rows_sorted(graph.offsets, graph.targets)
        self._sorted_for = (graph, flag)
        return flag

    def acceptance(
        self,
        graph: CSRGraph,
        prev: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Acceptance probability of each candidate given previous vertices."""
        p_return = self.w_return / self.ceiling
        p_common = 1.0 / self.ceiling
        p_inout = self.w_inout / self.ceiling
        first_step = prev < 0
        is_return = candidates == prev
        # Edge existence only matters for lanes that are neither; give the
        # search a safe source for first-step lanes (prev == -1).
        safe_prev = np.where(first_step, 0, prev)
        if self._graph_rows_sorted(graph):
            exists = csr_edges_exist(
                graph.offsets, graph.targets, safe_prev, candidates
            )
        else:  # pragma: no cover - builders always sort; hand-built escape
            exists = np.fromiter(
                (
                    graph.has_edge(int(s), int(c))
                    for s, c in zip(safe_prev, candidates)
                ),
                dtype=bool,
                count=candidates.size,
            )
        return np.where(
            first_step,
            1.0,
            np.where(is_return, p_return, np.where(exists, p_common, p_inout)),
        )
