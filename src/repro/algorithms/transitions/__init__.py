"""Unified vectorized transition-sampling layer.

Next-hop sampling dominates the walk-update kernel's per-step cost
(Algorithm 1 line 4): ThunderRW shows the choice of sampling *method*
(uniform, alias, inverse-transform, rejection) is the main per-step cost
knob, and C-SAW makes sampling a first-class pluggable API on GPUs.  This
subpackage gives the reproduction the same structure:

* :class:`~repro.algorithms.transitions.base.TransitionSampler` — the
  protocol every sampler implements: ``prepare`` (per-partition build,
  cached) and ``sample`` (one vectorized draw per pending walk).
* Implementations — :class:`UniformTransition` (degree-scaled draw),
  :class:`AliasTransition` (fully vectorized Vose build over the flattened
  partition edge array), :class:`InverseTransformTransition`
  (``searchsorted`` on per-vertex weight prefix sums) and
  :class:`RejectionTransition` (propose uniform, accept ``w / w_max``).
* :mod:`~repro.algorithms.transitions.secondorder` — the node2vec
  acceptance kernel: candidate classification via vectorized binary search
  over sorted CSR adjacency instead of per-candidate ``graph.has_edge``.
* A registry (:func:`make_sampler`, :func:`available_samplers`) the
  algorithms, :class:`~repro.core.config.EngineConfig` and the CLI select
  samplers through; every system (LightTraffic engine and the
  NextDoor/FlashMob/ThunderRW baselines) shares these implementations.

The per-sampler *cost* lives in :mod:`repro.gpu.calibration`
(``Calibration.step_cycles_for``) so Fig-17-style experiments can compare
sampling methods on the simulated device.
"""

from repro.algorithms.transitions.base import TransitionSampler
from repro.algorithms.transitions.registry import (
    SAMPLER_ALIAS,
    SAMPLER_INVERSE,
    SAMPLER_REJECTION,
    SAMPLER_SECOND_ORDER,
    SAMPLER_UNIFORM,
    available_samplers,
    make_sampler,
    register_sampler,
)
from repro.algorithms.transitions.uniform import UniformTransition
from repro.algorithms.transitions.alias import (
    AliasTransition,
    build_alias_tables,
)
from repro.algorithms.transitions.inverse import InverseTransformTransition
from repro.algorithms.transitions.rejection import RejectionTransition
from repro.algorithms.transitions.secondorder import (
    SecondOrderAcceptance,
    csr_edges_exist,
)

__all__ = [
    "TransitionSampler",
    "SAMPLER_UNIFORM",
    "SAMPLER_ALIAS",
    "SAMPLER_INVERSE",
    "SAMPLER_REJECTION",
    "SAMPLER_SECOND_ORDER",
    "available_samplers",
    "make_sampler",
    "register_sampler",
    "UniformTransition",
    "AliasTransition",
    "build_alias_tables",
    "InverseTransformTransition",
    "RejectionTransition",
    "SecondOrderAcceptance",
    "csr_edges_exist",
]
