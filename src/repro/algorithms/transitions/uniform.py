"""Uniform next-hop sampling (the paper's default, §II-A)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.base import uniform_neighbors
from repro.algorithms.transitions.base import TransitionSampler
from repro.algorithms.transitions.registry import (
    SAMPLER_UNIFORM,
    register_sampler,
)
from repro.graph.partition import GraphPartition


class UniformTransition(TransitionSampler):
    """Degree-scaled uniform pick: one ``rng.random`` draw per walk.

    Delegates to :func:`repro.algorithms.base.uniform_neighbors` so the
    registry path is draw-for-draw identical to the historical inline call
    (golden engine traces must not move).
    """

    name = SAMPLER_UNIFORM

    def sample(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return uniform_neighbors(partition, vertices, rng)


register_sampler(SAMPLER_UNIFORM, UniformTransition)
