"""Inverse-transform sampling via ``searchsorted`` on weight prefix sums.

ThunderRW's "ITS" method: precompute the prefix sum of each vertex's edge
weights, draw one uniform per walk, and binary-search the prefix array.
One all-lanes draw per step (counter-RNG compatible), O(log d) per pick,
and the per-partition state is a single float64 array — half the footprint
of an alias table, the classic ITS-vs-alias trade-off.

The per-vertex prefix sums are stored as one global prefix over the
flattened edge array: it is nondecreasing (weights are non-negative), so a
single global ``searchsorted`` resolves every lane at once, and the hit is
clamped back into the lane's own edge range.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.algorithms.transitions.base import TransitionSampler
from repro.algorithms.transitions.registry import (
    SAMPLER_INVERSE,
    register_sampler,
)
from repro.graph.partition import GraphPartition


class InverseTransformTransition(TransitionSampler):
    """Weighted pick by inverting the per-vertex weight CDF."""

    name = SAMPLER_INVERSE
    needs_weights = True

    def _build(self, partition: GraphPartition) -> Any:
        weights = self._require_weights(partition)
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        return np.concatenate(([0.0], np.cumsum(weights)))

    def sample(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        prefix = self.prepare(partition)
        local = vertices - partition.start
        starts = partition.offsets[local]
        stops = partition.offsets[local + 1]
        totals = prefix[stops] - prefix[starts]
        # Zero-degree vertices and all-zero-weight rows both have no mass
        # to sample from; treat both as dead ends.
        dead_end = totals <= 0
        u = rng.random(vertices.size)
        target = prefix[starts] + u * totals
        edge = np.searchsorted(prefix, target, side="right") - 1
        # u < 1 keeps target below prefix[stops], but clamp defensively
        # against zero-weight edges at row boundaries and float round-up.
        edge = np.minimum(np.maximum(edge, starts), np.maximum(stops - 1, 0))
        safe = np.where(dead_end, 0, edge)
        if partition.targets.size == 0:
            return vertices.copy(), dead_end
        next_vertices = partition.targets[safe]
        return np.where(dead_end, vertices, next_vertices), dead_end


register_sampler(SAMPLER_INVERSE, InverseTransformTransition)
