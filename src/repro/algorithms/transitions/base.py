"""The transition-sampler protocol.

A :class:`TransitionSampler` answers one question, vectorized: *given a set
of walks parked at vertices of one graph partition, which neighbor does
each walk move to?*  Algorithms own a sampler instance and call
:meth:`TransitionSampler.sample` from ``step_once``; the engine's cost
model charges the active sampler's per-step cycles
(:meth:`repro.gpu.calibration.Calibration.step_cycles_for`).

Contract
--------
* ``sample(partition, vertices, rng)`` returns ``(next_vertices,
  dead_end)``; ``dead_end[i]`` marks walks whose vertex has no eligible
  out-edge (their ``next_vertices`` entry is the vertex itself).  All
  ``vertices`` carry *global* ids inside ``partition``.
* Per-partition preprocessing (alias tables, prefix sums) happens in
  :meth:`prepare`, cached by partition index — the O(E_p) build cost is
  paid once, mirroring a device-resident auxiliary structure.
* Samplers that redraw only a *subset* of lanes (rejection) set
  ``subset_draws = True``; the engine refuses ``rng_mode="counter"`` for
  them because the counter RNG's all-lanes draw contract cannot replay
  data-dependent subsets.
* Saturation of bounded rejection loops is counted in ``fallbacks`` and
  drained by :meth:`consume_fallbacks` so the event bus can surface
  silent quality degradation (walks that accepted an unvetted candidate).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Tuple

import numpy as np

from repro.graph.partition import GraphPartition


class TransitionSampler(abc.ABC):
    """Vectorized next-hop selection for walks inside one partition."""

    #: registry name (also the cost-model key).
    name: str = "sampler"
    #: whether the sampler requires edge weights on the partition.
    needs_weights: bool = False
    #: whether the sampler redraws data-dependent lane subsets
    #: (incompatible with the counter-based RNG's all-lanes contract).
    subset_draws: bool = False

    def __init__(self) -> None:
        self._states: Dict[int, object] = {}
        self.fallbacks = 0

    # ------------------------------------------------------------------
    def prepare(self, partition: GraphPartition) -> Any:
        """Cached per-partition build state (alias tables, prefix sums)."""
        state = self._states.get(partition.index)
        if state is None:
            state = self._states[partition.index] = self._build(partition)
        return state

    def prepared_state(self, partition: GraphPartition) -> Any:
        """Public accessor for the cached per-partition build state.

        Execution backends replay transition kernels outside
        :meth:`sample` and need the same tables (builds are
        deterministic, so equal partitions yield bit-identical state).
        """
        return self.prepare(partition)

    def reset(self) -> None:
        """Drop cached per-partition state (e.g. when the graph changes)."""
        self._states.clear()

    def consume_fallbacks(self) -> int:
        """Return and clear the saturation count since the last call."""
        count = self.fallbacks
        self.fallbacks = 0
        return count

    # ------------------------------------------------------------------
    def _build(self, partition: GraphPartition) -> Any:
        """Build the per-partition state; default: no state."""
        return None

    @abc.abstractmethod
    def sample(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: Any,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pick one neighbor per walk; returns ``(next_vertices, dead_end)``."""

    # ------------------------------------------------------------------
    def _require_weights(self, partition: GraphPartition) -> np.ndarray:
        if partition.weights is None:
            raise ValueError(
                f"{self.name} sampling requires edge weights "
                f"(partition {partition.index} is unweighted)"
            )
        return partition.weights

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
