"""Weighted pick via rejection: propose uniform, accept ``w / w_max``.

No per-vertex table build (unlike alias/inverse) at the cost of a few
proposal rounds — the time/space trade-off §II-A alludes to; the only
per-partition state is each vertex's maximum edge weight.

Redraws touch data-dependent lane subsets, so this sampler is incompatible
with the counter RNG's all-lanes contract (``subset_draws = True``).  When
the round cap is hit, the last proposal is accepted *unvetted*; every such
lane increments ``fallbacks`` so the event bus can surface distribution-
quality degradation instead of hiding it.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.algorithms.transitions.base import TransitionSampler
from repro.algorithms.transitions.registry import (
    SAMPLER_REJECTION,
    register_sampler,
)
from repro.graph.partition import GraphPartition


class RejectionTransition(TransitionSampler):
    """Propose a uniform neighbor, accept with ``weight / max_weight``."""

    name = SAMPLER_REJECTION
    needs_weights = True
    subset_draws = True

    def __init__(self, max_rounds: int = 64) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        super().__init__()
        self.max_rounds = max_rounds

    def _build(self, partition: GraphPartition) -> Any:
        weights = self._require_weights(partition)
        # Per-vertex maximum edge weight (vectorized segment max).
        max_w = np.zeros(partition.num_vertices, dtype=np.float64)
        np.maximum.at(
            max_w,
            np.repeat(
                np.arange(partition.num_vertices),
                np.diff(partition.offsets),
            ),
            weights,
        )
        return max_w

    def sample(
        self,
        partition: GraphPartition,
        vertices: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        max_w = self.prepare(partition)
        weights = partition.weights
        local = vertices - partition.start
        starts = partition.offsets[local]
        degrees = partition.offsets[local + 1] - starts
        dead_end = degrees == 0
        result = vertices.copy()
        pending = ~dead_end
        ceiling = max_w[local]
        for __ in range(self.max_rounds):
            if not pending.any():
                break
            idx = np.nonzero(pending)[0]
            pick = (rng.random(idx.size) * degrees[idx]).astype(np.int64)
            edge = starts[idx] + np.minimum(pick, degrees[idx] - 1)
            accept = rng.random(idx.size) * ceiling[idx] < weights[edge]
            result[idx[accept]] = partition.targets[edge[accept]]
            pending[idx[accept]] = False
        if pending.any():  # accept the last proposal after the round cap
            idx = np.nonzero(pending)[0]
            self.fallbacks += int(idx.size)
            pick = (rng.random(idx.size) * degrees[idx]).astype(np.int64)
            edge = starts[idx] + np.minimum(pick, degrees[idx] - 1)
            result[idx] = partition.targets[edge]
        return result, dead_end


register_sampler(SAMPLER_REJECTION, RejectionTransition)
