"""Sampler registry: name -> factory, shared by every system.

Algorithms, :class:`~repro.core.config.EngineConfig` and the CLI all
select transition samplers by these names; the calibration layer keys its
per-sampler step-cycle entries on the same names
(:meth:`repro.gpu.calibration.Calibration.step_cycles_for`), so picking a
sampler changes both the executed semantics and the modeled cost.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.algorithms.transitions.base import TransitionSampler

SAMPLER_UNIFORM = "uniform"
SAMPLER_ALIAS = "alias"
SAMPLER_INVERSE = "inverse"
SAMPLER_REJECTION = "rejection"
#: node2vec's biased acceptance kernel; not a first-order registry entry
#: (it needs the previous-vertex side table) but shares the cost namespace.
SAMPLER_SECOND_ORDER = "second_order"

_REGISTRY: Dict[str, Callable[[], TransitionSampler]] = {}


def register_sampler(
    name: str, factory: Callable[[], TransitionSampler]
) -> None:
    """Register a first-order sampler factory under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError("sampler name must be a non-empty string")
    if name in _REGISTRY:
        raise ValueError(f"sampler {name!r} is already registered")
    _REGISTRY[name] = factory


def available_samplers() -> Tuple[str, ...]:
    """Registered first-order sampler names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def make_sampler(name: str, **kwargs: Any) -> TransitionSampler:
    """Instantiate the sampler registered under ``name``."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; available: "
            f"{', '.join(available_samplers())}"
        ) from None
    return factory(**kwargs)


def _ensure_builtins() -> None:
    """Import the built-in samplers (registered on module import)."""
    if SAMPLER_UNIFORM not in _REGISTRY:
        # Deferred to avoid a registry <-> implementation import cycle.
        from repro.algorithms.transitions import (  # noqa: F401
            alias,
            inverse,
            rejection,
            uniform,
        )
