"""Metapath-guided walks over heterogeneous graphs (extension).

metapath2vec (cited in the paper's introduction as a heavy consumer of
random walks — it samples up to 1000|V| walks) constrains each step to
follow a *metapath*: a cyclic sequence of vertex types, e.g.
author -> paper -> author.  This extension adds typed walks on top of the
same out-of-memory engine: vertex types live in a host-side array, the walk
picks uniformly among neighbors of the type the metapath requires next, and
terminates early if no such neighbor exists.

Like :class:`~repro.algorithms.node2vec.Node2Vec`, the type filter needs
neighbor inspection beyond the current partition's guarantee, so walks
consult the host-resident type table (documented deviation; the type array
is tiny — one byte-scale entry per vertex — and would realistically be
device-resident).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.prng import seeded_rng
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition


class MetapathWalk(RandomWalkAlgorithm):
    """Fixed-length walks constrained to a cyclic vertex-type pattern."""

    name = "metapath"
    carries_walk_id = True

    def __init__(
        self,
        vertex_types: np.ndarray,
        metapath: Sequence[int],
        length: int = 80,
    ) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        vertex_types = np.asarray(vertex_types, dtype=np.int64)
        if vertex_types.ndim != 1:
            raise ValueError("vertex_types must be 1-D")
        metapath = list(metapath)
        if len(metapath) < 2:
            raise ValueError("metapath needs at least two types")
        self.vertex_types = vertex_types
        self.metapath = np.asarray(metapath, dtype=np.int64)
        self.length = length
        self.early_terminations = 0

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        # vertex + steps + walk_id (+ the metapath phase, 1 byte, rounded
        # into the id word in a real layout).
        return 16

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.vertex_types.size != graph.num_vertices:
            raise ValueError("vertex_types must cover every vertex")
        starts = np.nonzero(self.vertex_types == self.metapath[0])[0]
        if starts.size == 0:
            raise ValueError(
                f"no vertex has the metapath's start type {self.metapath[0]}"
            )
        picks = rng.integers(0, starts.size, size=num_walks)
        return starts[picks]

    # ------------------------------------------------------------------
    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The required next type cycles with the step count; the start
        # vertex consumed phase 0.
        phase = (steps + 1) % self.metapath.size
        wanted = self.metapath[phase]
        local = vertices - partition.start
        starts = partition.offsets[local]
        stops = partition.offsets[local + 1]
        n = vertices.size
        new_v = vertices.copy()
        lengths = stops - starts
        total = int(lengths.sum())
        # One uniform per walk regardless of its typed-neighbor count keeps
        # the draw shape data-independent (counter-RNG compatible).
        u = rng.random(n)
        if total == 0:
            stuck = np.ones(n, dtype=bool)
        else:
            # Flatten every walk's neighbor list into one ragged gather.
            walk_idx = np.repeat(np.arange(n, dtype=np.int64), lengths)
            base = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            pos = np.arange(total, dtype=np.int64) - base[walk_idx]
            neighbors = partition.targets[starts[walk_idx] + pos]
            if int(neighbors.max()) >= self.vertex_types.size:
                raise ValueError(
                    f"vertex_types covers {self.vertex_types.size} vertices "
                    f"but the graph references vertex {int(neighbors.max())}"
                )
            typed = self.vertex_types[neighbors] == wanted[walk_idx]
            counts = np.bincount(walk_idx, weights=typed, minlength=n).astype(
                np.int64
            )
            stuck = counts == 0
            # Pick the k-th typed neighbor of each walk by rank-selecting
            # into the running count of typed entries.
            k = np.minimum(
                (u * counts).astype(np.int64), np.maximum(counts - 1, 0)
            )
            typed_csum = np.cumsum(typed)
            base_count = np.concatenate(([0], typed_csum))[base]
            flat_pick = np.searchsorted(
                typed_csum, base_count + k + 1, side="left"
            )
            moved = ~stuck
            new_v[moved] = neighbors[flat_pick[moved]]
        self.early_terminations += int(stuck.sum())
        terminated = stuck | (steps + 1 >= self.length)
        return new_v, terminated

    def expected_total_steps(self, num_walks: int) -> Optional[float]:
        return None  # early termination makes it data-dependent


def random_vertex_types(
    num_vertices: int, num_types: int, seed: Optional[int] = None
) -> np.ndarray:
    """Uniformly random type labels (testing/example helper)."""
    if num_types < 1:
        raise ValueError("num_types must be >= 1")
    rng = seeded_rng(seed)
    return rng.integers(0, num_types, size=num_vertices, dtype=np.int64)
