"""Second-order node2vec walks via rejection sampling (extension).

This goes beyond the paper's three evaluated algorithms (the paper cites
second-order walks as related work, §V).  Node2vec biases the next-hop
distribution by the *previous* vertex: a candidate at distance 0 from the
previous vertex is weighted ``1/p``, distance 1 weighted ``1``, otherwise
``1/q``.  We use the standard rejection-sampling formulation: propose a
uniform neighbor, accept with the candidate's weight over ``max(1, 1/p,
1/q)``.

The acceptance classification runs vectorized through
:class:`~repro.algorithms.transitions.secondorder.SecondOrderAcceptance`
(binary search over sorted CSR adjacency); the historical per-candidate
``graph.has_edge`` loop is kept as :meth:`Node2Vec._acceptance_loop` — the
parity anchor and the ``repro bench samplers`` before/after baseline.

Out-of-memory caveat (documented deviation): the distance test needs the
*previous* vertex's adjacency, which may live in a different partition.
True out-of-memory second-order walks need the I/O machinery of GraSorw;
here the check reads the full host-resident graph (in this reproduction the
host always holds the whole CSR anyway), and the walk index carries the
previous vertex in a host-side side table keyed by ``walk_id``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.algorithms.transitions import (
    SAMPLER_SECOND_ORDER,
    SecondOrderAcceptance,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition


class Node2Vec(RandomWalkAlgorithm):
    """Fixed-length second-order walks with (p, q) bias."""

    name = "node2vec"
    carries_walk_id = True
    transition_sampler = SAMPLER_SECOND_ORDER
    uses_subset_draws = True  # rejection rounds redraw pending lanes only

    def __init__(
        self,
        length: int = 80,
        return_param: float = 1.0,
        inout_param: float = 1.0,
        max_reject_rounds: int = 32,
    ) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        if return_param <= 0 or inout_param <= 0:
            raise ValueError("p and q must be positive")
        self.length = length
        self.return_param = return_param
        self.inout_param = inout_param
        self.max_reject_rounds = max_reject_rounds
        self._acceptance_kernel = SecondOrderAcceptance(
            return_param, inout_param
        )
        self._prev: Optional[np.ndarray] = None
        self._fallbacks = 0

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        # vertex + steps + walk_id + prev_vertex
        return 24

    def consume_sampler_fallbacks(self) -> int:
        count = self._fallbacks
        self._fallbacks = 0
        return count

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        starts = np.arange(num_walks, dtype=np.int64) % graph.num_vertices
        self._prev = np.full(num_walks, -1, dtype=np.int64)
        return starts

    def _prev_table(self, ids: np.ndarray) -> np.ndarray:
        """The previous-vertex side table, grown to cover ``ids``.

        Engine reuse (multi-round runs, a second ``run`` with more walks)
        can present walk ids beyond the table sized by ``start_vertices``;
        growing on demand keeps those ids well-defined as fresh walks
        (prev = -1) instead of surfacing a raw IndexError.
        """
        if self._prev is None:
            raise RuntimeError("start_vertices must be called first")
        if ids.size:
            max_id = int(ids.max())
            if max_id >= self._prev.size:
                grown = np.full(max_id + 1, -1, dtype=np.int64)
                grown[: self._prev.size] = self._prev
                self._prev = grown
        return self._prev

    # ------------------------------------------------------------------
    def _acceptance(
        self,
        graph: CSRGraph,
        prev: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Acceptance probability of each candidate given previous vertices."""
        return self._acceptance_kernel.acceptance(graph, prev, candidates)

    def _acceptance_loop(
        self,
        graph: CSRGraph,
        prev: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Per-candidate ``has_edge`` loop (parity/bench reference)."""
        w_return = 1.0 / self.return_param
        w_inout = 1.0 / self.inout_param
        ceiling = max(1.0, w_return, w_inout)
        probs = np.empty(candidates.size, dtype=np.float64)
        for i in range(candidates.size):
            pv = int(prev[i])
            cand = int(candidates[i])
            if pv < 0:
                probs[i] = 1.0  # first step is unbiased
            elif cand == pv:
                probs[i] = w_return / ceiling
            elif graph.has_edge(pv, cand):
                probs[i] = 1.0 / ceiling
            else:
                probs[i] = w_inout / ceiling
        return probs

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if graph is None:
            raise RuntimeError(
                "Node2Vec requires host-graph access for second-order checks"
            )
        prev_table = self._prev_table(ids)
        prev = prev_table[ids]
        new_v, dead_end = uniform_neighbors(partition, vertices, rng)
        pending = ~dead_end
        rounds = 0
        while pending.any() and rounds < self.max_reject_rounds:
            idx = np.nonzero(pending)[0]
            probs = self._acceptance(graph, prev[idx], new_v[idx])
            accepted = rng.random(idx.size) < probs
            pending[idx[accepted]] = False
            if pending.any():
                re_idx = np.nonzero(pending)[0]
                resampled, re_dead = uniform_neighbors(
                    partition, vertices[re_idx], rng
                )
                new_v[re_idx] = resampled
                pending[re_idx[re_dead]] = False
            rounds += 1
        # Lanes still pending kept their last, unvetted candidate; count
        # them so the event bus can surface the quality degradation.
        self._fallbacks += int(pending.sum())
        prev_table[ids] = vertices
        terminated = dead_end | (steps + 1 >= self.length)
        return new_v, terminated

    def expected_total_steps(self, num_walks: int) -> float:
        return float(num_walks) * self.length
