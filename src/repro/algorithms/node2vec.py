"""Second-order node2vec walks via rejection sampling (extension).

This goes beyond the paper's three evaluated algorithms (the paper cites
second-order walks as related work, §V).  Node2vec biases the next-hop
distribution by the *previous* vertex: a candidate at distance 0 from the
previous vertex is weighted ``1/p``, distance 1 weighted ``1``, otherwise
``1/q``.  We use the standard rejection-sampling formulation: propose a
uniform neighbor, accept with the candidate's weight over ``max(1, 1/p,
1/q)``.

Out-of-memory caveat (documented deviation): the distance test needs the
*previous* vertex's adjacency, which may live in a different partition.
True out-of-memory second-order walks need the I/O machinery of GraSorw;
here the check reads the full host-resident graph (in this reproduction the
host always holds the whole CSR anyway), and the walk index carries the
previous vertex in a host-side side table keyed by ``walk_id``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition


class Node2Vec(RandomWalkAlgorithm):
    """Fixed-length second-order walks with (p, q) bias."""

    name = "node2vec"
    carries_walk_id = True

    def __init__(
        self,
        length: int = 80,
        return_param: float = 1.0,
        inout_param: float = 1.0,
        max_reject_rounds: int = 32,
    ) -> None:
        if length < 1:
            raise ValueError("walk length must be >= 1")
        if return_param <= 0 or inout_param <= 0:
            raise ValueError("p and q must be positive")
        self.length = length
        self.return_param = return_param
        self.inout_param = inout_param
        self.max_reject_rounds = max_reject_rounds
        self._prev: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        # vertex + steps + walk_id + prev_vertex
        return 24

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        starts = np.arange(num_walks, dtype=np.int64) % graph.num_vertices
        self._prev = np.full(num_walks, -1, dtype=np.int64)
        return starts

    # ------------------------------------------------------------------
    def _acceptance(
        self,
        graph: CSRGraph,
        prev: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Acceptance probability of each candidate given previous vertices."""
        w_return = 1.0 / self.return_param
        w_inout = 1.0 / self.inout_param
        ceiling = max(1.0, w_return, w_inout)
        probs = np.empty(candidates.size, dtype=np.float64)
        for i in range(candidates.size):
            pv = int(prev[i])
            cand = int(candidates[i])
            if pv < 0:
                probs[i] = 1.0  # first step is unbiased
            elif cand == pv:
                probs[i] = w_return / ceiling
            elif graph.has_edge(pv, cand):
                probs[i] = 1.0 / ceiling
            else:
                probs[i] = w_inout / ceiling
        return probs

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if graph is None:
            raise RuntimeError(
                "Node2Vec requires host-graph access for second-order checks"
            )
        if self._prev is None:
            raise RuntimeError("start_vertices must be called first")
        prev = self._prev[ids]
        new_v, dead_end = uniform_neighbors(partition, vertices, rng)
        pending = ~dead_end
        rounds = 0
        while pending.any() and rounds < self.max_reject_rounds:
            idx = np.nonzero(pending)[0]
            probs = self._acceptance(graph, prev[idx], new_v[idx])
            accepted = rng.random(idx.size) < probs
            pending[idx[accepted]] = False
            if pending.any():
                re_idx = np.nonzero(pending)[0]
                resampled, re_dead = uniform_neighbors(
                    partition, vertices[re_idx], rng
                )
                new_v[re_idx] = resampled
                pending[re_idx[re_dead]] = False
            rounds += 1
        self._prev[ids] = vertices
        terminated = dead_end | (steps + 1 >= self.length)
        return new_v, terminated

    def expected_total_steps(self, num_walks: int) -> float:
        return float(num_walks) * self.length
