"""Neighbor sampling strategies for weighted graphs (§II-A).

The paper notes simple random walks extend to weighted graphs via rejection
sampling and alias sampling; both are provided here:

* :class:`AliasTable` — Vose's O(n) construction, O(1) sampling; used for
  weighted first-order walks.
* :func:`rejection_sample` — generic accept/reject against per-candidate
  acceptance probabilities; used by second-order node2vec walks.

These are the *loop reference* implementations: the production hot path
lives in :mod:`repro.algorithms.transitions` (vectorized builds), and this
module anchors its golden parity tests and the ``repro bench samplers``
before/after comparison.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np


class AliasTable:
    """Walker/Vose alias method over a discrete distribution."""

    __slots__ = ("prob", "alias", "size")

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        n = weights.size
        scaled = weights * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for i in small + large:
            prob[i] = 1.0
        self.prob = prob
        self.alias = alias
        self.size = n

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` indices in O(1) each."""
        if count < 0:
            raise ValueError("count must be non-negative")
        slots = rng.integers(0, self.size, size=count)
        accept = rng.random(count) < self.prob[slots]
        return np.where(accept, slots, self.alias[slots])


class PartitionAliasSampler:
    """Per-vertex alias tables for one weighted graph partition.

    Built lazily per partition (the construction cost is O(E_p), paid once
    when a weighted algorithm first touches the partition).  The per-vertex
    tables are stored *flattened* along the partition's edge array, so
    sampling is two vectorized draws for any mix of vertices — exactly the
    (slot, accept) pair a GPU alias kernel issues, and compatible with the
    counter-based RNG's all-lanes draw contract.
    """

    def __init__(self, offsets: np.ndarray, weights: np.ndarray) -> None:
        if weights is None:
            raise ValueError("partition has no weights")
        self.offsets = np.asarray(offsets, dtype=np.int64)
        num_edges = int(self.offsets[-1])
        self.prob_flat = np.ones(num_edges, dtype=np.float64)
        self.alias_flat = np.zeros(num_edges, dtype=np.int64)
        for v in range(self.offsets.size - 1):
            lo, hi = int(self.offsets[v]), int(self.offsets[v + 1])
            if hi > lo:
                table = AliasTable(weights[lo:hi])
                self.prob_flat[lo:hi] = table.prob
                self.alias_flat[lo:hi] = table.alias

    def sample_local(
        self, local_vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Edge-array index of a weighted neighbor pick per local vertex.

        Dead-end vertices (no out-edges) get -1.
        """
        n = local_vertices.size
        if self.prob_flat.size == 0:  # partition with no edges at all
            return np.full(n, -1, dtype=np.int64)
        starts = self.offsets[local_vertices]
        degrees = self.offsets[local_vertices + 1] - starts
        dead_end = degrees == 0
        slot = (rng.random(n) * degrees).astype(np.int64)
        slot = np.minimum(slot, np.maximum(degrees - 1, 0))
        edge = starts + slot
        safe_edge = np.where(dead_end, 0, edge)
        accept = rng.random(n) < self.prob_flat[safe_edge]
        picked_slot = np.where(accept, slot, self.alias_flat[safe_edge])
        out = starts + picked_slot
        return np.where(dead_end, -1, out)


def rejection_sample(
    rng: np.random.Generator,
    propose: Callable[[int], Tuple[np.ndarray, np.ndarray]],
    max_rounds: int = 64,
    on_fallback: Optional[Callable[[int], None]] = None,
) -> np.ndarray:
    """Generic vectorized rejection sampler.

    ``propose(k)`` returns ``(candidates, accept_prob)`` for ``k`` pending
    slots; slots failing the acceptance draw are re-proposed, up to
    ``max_rounds`` (after which the last candidate is accepted — acceptance
    probabilities are assumed bounded away from 0, as in node2vec where the
    floor is ``min(1, 1/p, 1/q)``).

    ``on_fallback`` is called with the number of slots that saturated the
    round cap and kept an unvetted candidate, so callers can surface the
    silent quality degradation (it is never called for a clean run).
    """
    candidates, accept_prob = propose(-1)  # -1 => all slots
    n = candidates.size
    result = candidates.copy()
    pending = rng.random(n) >= accept_prob
    rounds = 0
    while pending.any() and rounds < max_rounds:
        k = int(pending.sum())
        cand, prob = propose(k)
        idx = np.nonzero(pending)[0]
        result[idx] = cand
        accepted = rng.random(k) < prob
        pending[idx[accepted]] = False
        rounds += 1
    saturated = int(pending.sum())
    if saturated and on_fallback is not None:
        on_fallback(saturated)
    return result
