"""Personalized PageRank via geometric-length walks from one source (§IV-A).

All walks start at the same source vertex (the paper uses the
highest-degree vertex); at each step a walk terminates with probability
``p`` (default 0.15) and otherwise moves to a uniform neighbor, so walk
lengths follow a geometric distribution — the paper's canonical
variable-length workload (it is what makes stragglers and adaptive
zero-copy scheduling matter, Fig 14).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm, uniform_neighbors
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.walks.state import WalkArrays


class PersonalizedPageRank(RandomWalkAlgorithm):
    """Single-source random walks with geometric termination."""

    name = "ppr"
    carries_walk_id = False
    fixed_length = False

    def __init__(
        self,
        source: Optional[int] = None,
        stop_prob: float = 0.15,
        max_length: int = 10_000,
    ) -> None:
        if not 0 < stop_prob < 1:
            raise ValueError("stop_prob must be in (0, 1)")
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.source = source
        self.stop_prob = stop_prob
        self.max_length = max_length
        self.visit_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def resolve_source(self, graph: CSRGraph) -> int:
        """The configured source, defaulting to the highest-degree vertex."""
        if self.source is not None:
            if not 0 <= self.source < graph.num_vertices:
                raise ValueError("source vertex out of range")
            return self.source
        return int(np.argmax(graph.degrees()))

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        self.visit_counts = np.zeros(graph.num_vertices, dtype=np.int64)
        source = self.resolve_source(graph)
        return np.full(num_walks, source, dtype=np.int64)

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        np.add.at(self.visit_counts, walks.vertices, 1)

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        stop = rng.random(vertices.size) < self.stop_prob
        neighbor, dead_end = uniform_neighbors(partition, vertices, rng)
        new_v = np.where(stop, vertices, neighbor)
        terminated = stop | dead_end | (steps + 1 >= self.max_length)
        return new_v, terminated

    def observe(
        self, vertices: np.ndarray, ids: np.ndarray, terminated: np.ndarray
    ) -> None:
        moved = ~terminated
        if moved.any():
            np.add.at(self.visit_counts, vertices[moved], 1)

    # ------------------------------------------------------------------
    def ppr_scores(self) -> np.ndarray:
        """Visit frequencies normalized to the PPR probability estimate."""
        if self.visit_counts is None:
            raise RuntimeError("run the algorithm before reading scores")
        total = self.visit_counts.sum()
        if total == 0:
            return np.zeros_like(self.visit_counts, dtype=np.float64)
        return self.visit_counts / total

    def expected_total_steps(self, num_walks: int) -> float:
        # Each step terminates w.p. p, so processed steps per walk are
        # geometric with mean 1/p (the terminating draw is also processed).
        return float(num_walks) / self.stop_prob


class SeedSetPersonalizedPageRank(PersonalizedPageRank):
    """PPR whose walks start from a *seed set* instead of one source.

    The serving front-end's PPR queries carry an explicit seed set (a
    user's neighborhood, a topic's anchor pages); walks are assigned to
    seeds round-robin so every seed gets ``ceil(walks / len(seeds))`` or
    the floor thereof.  The assignment is a pure function of the walk
    index — no RNG draw — which keeps start vertices identical between a
    standalone run and the coalesced serve path regardless of the
    generator handed in.
    """

    name = "ppr-seedset"

    def __init__(
        self,
        sources: Sequence[int],
        stop_prob: float = 0.15,
        max_length: int = 10_000,
    ) -> None:
        super().__init__(
            source=None, stop_prob=stop_prob, max_length=max_length
        )
        seeds = np.asarray(list(sources), dtype=np.int64)
        if seeds.size == 0:
            raise ValueError("seed set must not be empty")
        if (seeds < 0).any():
            raise ValueError("seed vertices must be non-negative")
        self.sources = seeds

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        if int(self.sources.max()) >= graph.num_vertices:
            raise ValueError("seed vertex out of range")
        self.visit_counts = np.zeros(graph.num_vertices, dtype=np.int64)
        picks = np.arange(num_walks, dtype=np.int64) % self.sources.size
        return self.sources[picks]
