"""Host and device walk pools (paper §III-B, Figures 4 & 6).

The *host* pool stores the entire walk index grouped by partition, with no
capacity limit (CPU memory holds everything, as in the paper).  The *device*
pool caches at most ``m_w`` walks; per partition it keeps an append-only
write frontier plus the already-full batches awaiting computation, with one
reserved free batch per partition guaranteeing rollover never fails.

Implementation note: the device pool stores each partition's walks as a
FIFO list of array chunks and materializes fixed-size :class:`WalkBatch`
objects only at pop/evict time.  Batch *accounting* (how many full batches
exist, what the frontier holds) is derived from walk counts — `full =
count // B`, `frontier = count % B` — which is exactly the invariant the
paper's circular queues maintain, at a fraction of the bookkeeping cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Protocol

import numpy as np

from repro.core.units import Bytes
from repro.walks.batch import WalkBatch
from repro.walks.queue import BatchQueue
from repro.walks.state import WalkArrays


class DeviceObserver(Protocol):
    """Device-pool mutation hooks (see :class:`repro.analysis.Sanitizer`).

    Pure observation: implementations must not mutate the pool.
    ``available`` is the buffer-truth live count *before* the take, so
    over-consumes are visible even if ``counts`` has been corrupted.
    """

    def device_appended(
        self, pool: "DeviceWalkPool", partition: int, count: int
    ) -> None: ...

    def device_taken(
        self, pool: "DeviceWalkPool", partition: int, count: int,
        available: int,
    ) -> None: ...


class HostWalkPool:
    """CPU-memory walk index: one circular batch queue per partition."""

    def __init__(self, num_partitions: int, batch_capacity: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.batch_capacity = batch_capacity
        self._queues: Dict[int, BatchQueue] = {}
        self.counts = np.zeros(num_partitions, dtype=np.int64)

    def _queue(self, partition: int) -> BatchQueue:
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        queue = self._queues.get(partition)
        if queue is None:
            queue = BatchQueue(partition, self.batch_capacity)
            self._queues[partition] = queue
        return queue

    # ------------------------------------------------------------------
    def append_walks(self, partition: int, walks: WalkArrays) -> None:
        if not len(walks):
            return
        self._queue(partition).append_walks(walks)
        self.counts[partition] += len(walks)

    def push_batch(self, batch: WalkBatch) -> None:
        """Re-insert a batch evicted from the device pool."""
        self._queue(batch.partition).push_batch(batch)
        self.counts[batch.partition] += batch.size

    def pop_batch(self, partition: int) -> WalkBatch:
        batch = self._queue(partition).pop_batch()
        self.counts[partition] -= batch.size
        return batch

    def has_walks(self, partition: int) -> bool:
        return bool(self.counts[partition] > 0)

    def num_batches(self, partition: int) -> int:
        queue = self._queues.get(partition)
        if queue is None:
            return 0
        return sum(1 for b in queue if not b.is_empty)

    @property
    def total_walks(self) -> int:
        return int(self.counts.sum())

    def partitions_with_walks(self) -> np.ndarray:
        return np.nonzero(self.counts > 0)[0]

    def iter_walks(self) -> Iterator[WalkArrays]:
        """All walk contents (testing helper for conservation checks)."""
        for queue in self._queues.values():
            for batch in queue:
                if not batch.is_empty:
                    yield batch.contents()


class DeviceWalkPool:
    """GPU-memory walk cache: frontier + free batch per partition, m_w cap.

    ``capacity_walks`` bounds the number of walk states cached; the
    ``(2P + 1)B`` reservation for frontiers and free batches (§III-B memory
    usage analysis) is accounted separately via :meth:`reserved_bytes`.
    """

    def __init__(
        self, num_partitions: int, batch_capacity: int, capacity_walks: int
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if batch_capacity < 1:
            raise ValueError("batch_capacity must be >= 1")
        if capacity_walks < batch_capacity:
            raise ValueError("capacity_walks must hold at least one batch")
        self.num_partitions = num_partitions
        self.batch_capacity = batch_capacity
        self.capacity_walks = capacity_walks
        #: optional sanitizer hook (see :class:`DeviceObserver`).
        self.observer: Optional[DeviceObserver] = None
        # Per-partition contiguous append buffers (vertices, steps, ids,
        # head, tail): inserts are slice assignments at the tail, pops are
        # slice views from the head — both O(1) per call.  counts[p] always
        # equals tail - head.
        self._buffers: Dict[int, list] = {}
        self.counts = np.zeros(num_partitions, dtype=np.int64)

    def _buffer(self, partition: int, extra: int) -> list:
        """The partition's buffer with >= ``extra`` free tail slots."""
        buffer = self._buffers.get(partition)
        if buffer is None:
            cap = max(4 * self.batch_capacity, extra)
            buffer = [
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.int32),
                np.empty(cap, dtype=np.int64),
                0,  # head
                0,  # tail
            ]
            self._buffers[partition] = buffer
            return buffer
        head, tail = buffer[3], buffer[4]
        cap = buffer[0].size
        if tail + extra <= cap:
            return buffer
        live = tail - head
        if live + extra <= cap and head >= cap // 2:
            # Compact: shift the live region to the front.
            for k in range(3):
                buffer[k][:live] = buffer[k][head:tail]
            buffer[3], buffer[4] = 0, live
            return buffer
        new_cap = max(cap * 2, live + extra)
        for k in range(3):
            grown = np.empty(new_cap, dtype=buffer[k].dtype)
            grown[:live] = buffer[k][head:tail]
            buffer[k] = grown
        buffer[3], buffer[4] = 0, live
        return buffer

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def cached_walks(self) -> int:
        return int(self.counts.sum())

    @property
    def overflow(self) -> int:
        """How many walks exceed ``m_w`` (must be evicted before loading)."""
        return max(0, self.cached_walks - self.capacity_walks)

    def free_capacity(self) -> int:
        return max(0, self.capacity_walks - self.cached_walks)

    def reserved_bytes(self, bytes_per_walk: int) -> Bytes:
        """The §III-B bound: (2P + 1) batches of frontier/free reservation."""
        return Bytes(
            (2 * self.num_partitions + 1)
            * self.batch_capacity
            * bytes_per_walk
        )

    def num_walks(self, partition: int) -> int:
        return int(self.counts[partition])

    def has_walks(self, partition: int) -> bool:
        return bool(self.counts[partition] > 0)

    def partitions_with_walks(self) -> np.ndarray:
        return np.nonzero(self.counts > 0)[0]

    def full_batches(self, partition: int) -> int:
        """Completed (non-frontier) batches: ``count // B``."""
        return int(self.counts[partition]) // self.batch_capacity

    def frontier_size(self, partition: int) -> int:
        """Walks sitting in the partition's write frontier: ``count % B``."""
        return int(self.counts[partition]) % self.batch_capacity

    def has_cached_batches(self, partition: int) -> bool:
        """Whether completed batches exist (these are the preemptible ones;
        the write frontier must stay in place to receive reshuffled walks)."""
        return self.full_batches(partition) >= 1

    def has_full_cached_batch(self, partition: int) -> bool:
        return self.full_batches(partition) >= 1

    # ------------------------------------------------------------------
    # Frontier writes (first-level walk-index cache, §III-C)
    # ------------------------------------------------------------------
    def append_walks(self, partition: int, walks: WalkArrays) -> None:
        """Append updated walks to the partition's frontier (rollover-safe).

        The caller must not mutate ``walks`` afterwards (reshuffled groups
        are freshly sorted copies, so this holds throughout the engine).
        """
        n = len(walks)
        if not n:
            return
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        buffer = self._buffer(partition, n)
        tail = buffer[4]
        buffer[0][tail : tail + n] = walks.vertices
        buffer[1][tail : tail + n] = walks.steps
        buffer[2][tail : tail + n] = walks.ids
        buffer[4] = tail + n
        self.counts[partition] += n
        if self.observer is not None:
            self.observer.device_appended(self, partition, n)

    def scatter_sorted(
        self,
        parts: list,
        sizes: np.ndarray,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
    ) -> None:
        """Bulk frontier insert of partition-sorted walks (reshuffle hot path).

        ``parts[k]`` receives the slice ``[starts[k], stops[k])`` of the
        sorted payload arrays.  Semantically identical to calling
        :meth:`append_walks` per group; one vectorized count update.
        """
        for k, part in enumerate(parts):
            lo = starts[k]
            hi = stops[k]
            n = hi - lo
            buffer = self._buffer(part, n)
            tail = buffer[4]
            buffer[0][tail : tail + n] = vertices[lo:hi]
            buffer[1][tail : tail + n] = steps[lo:hi]
            buffer[2][tail : tail + n] = ids[lo:hi]
            buffer[4] = tail + n
            if self.observer is not None:
                self.observer.device_appended(self, part, int(n))
        np.add.at(self.counts, parts, sizes)

    # ------------------------------------------------------------------
    # Batch load / fetch / evict
    # ------------------------------------------------------------------
    def load_batch(self, batch: WalkBatch) -> None:
        """Cache a batch transferred from the host pool."""
        if batch.is_empty:
            return
        self.append_walks(batch.partition, batch.drain())

    def _take(self, partition: int, count: int) -> WalkArrays:
        """Remove the oldest ``count`` walks of a partition (FIFO).

        Returns zero-copy views of the buffer region.  The region is not
        reused until a later insert compacts or grows the buffer, so the
        caller may mutate the views while it processes them (the engine
        finishes each popped group synchronously before further pool ops on
        the partition).
        """
        buffer = self._buffers[partition]
        head = buffer[3]
        if self.observer is not None:
            self.observer.device_taken(
                self, partition, count, buffer[4] - head
            )
        stop = head + count
        out = WalkArrays(
            buffer[0][head:stop], buffer[1][head:stop], buffer[2][head:stop]
        )
        buffer[3] = stop
        self.counts[partition] -= count
        return out

    def pop_all(self, partition: int) -> WalkArrays:
        """Fetch every cached walk of this partition (frontier included).

        Used when the partition is selected: all its batches are computed,
        and its walk count drops to zero (§II-B observation).
        """
        count = int(self.counts[partition])
        if count == 0:
            return WalkArrays.empty()
        return self._take(partition, count)

    def pop_full_batches(self, partition: int) -> WalkArrays:
        """Fetch the completed batches only (preemptive scheduling)."""
        full = self.full_batches(partition)
        if full == 0:
            raise IndexError(
                f"partition {partition} has no completed cached batches"
            )
        return self._take(partition, full * self.batch_capacity)

    def pop_preemptible(self, partition: int) -> WalkArrays:
        """Fetch the preemptible walks: the completed batches if any exist,
        otherwise the detached write frontier (which the reserved free batch
        immediately replaces, per §III-C)."""
        full = self.full_batches(partition)
        if full:
            return self._take(partition, full * self.batch_capacity)
        return self.pop_all(partition)

    def evict_batch(self, partition: int) -> WalkBatch:
        """Remove up to one batch of walks for transfer back to the host."""
        count = int(self.counts[partition])
        if count == 0:
            raise IndexError(f"partition {partition} has no walks to evict")
        take = min(count, self.batch_capacity)
        walks = self._take(partition, take)
        batch = WalkBatch(self.batch_capacity, partition)
        batch.append(walks)
        return batch

    def iter_walks(self) -> Iterator[WalkArrays]:
        """All walk contents (testing helper for conservation checks)."""
        for buffer in self._buffers.values():
            head, tail = buffer[3], buffer[4]
            if tail > head:
                yield WalkArrays(
                    buffer[0][head:tail],
                    buffer[1][head:tail],
                    buffer[2][head:tail],
                )
