"""Per-partition circular queue of walk batches (paper §III-B, Figure 6).

Batches belonging to one partition form a circular queue: during
computation, batches are fetched from the *head*; insertions of updated
walks go to the *write frontier* at the tail with append-only writes.  When
the frontier fills, a fresh batch becomes the new frontier (on the device
pool the fresh batch is the pre-reserved free batch, so no allocation can
fail mid-kernel).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.walks.batch import WalkBatch
from repro.walks.state import WalkArrays


class BatchQueue:
    """Circular queue of batches for one partition."""

    __slots__ = ("partition", "batch_capacity", "_batches")

    def __init__(self, partition: int, batch_capacity: int) -> None:
        if batch_capacity < 1:
            raise ValueError("batch_capacity must be >= 1")
        self.partition = partition
        self.batch_capacity = batch_capacity
        self._batches: Deque[WalkBatch] = deque()

    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return len(self._batches)

    @property
    def num_walks(self) -> int:
        return sum(batch.size for batch in self._batches)

    @property
    def is_empty(self) -> bool:
        return all(batch.is_empty for batch in self._batches)

    @property
    def frontier(self) -> Optional[WalkBatch]:
        """The write-frontier batch (tail), or ``None`` if no batch exists."""
        return self._batches[-1] if self._batches else None

    def batches(self) -> List[WalkBatch]:
        return list(self._batches)

    def __iter__(self) -> Iterator[WalkBatch]:
        return iter(self._batches)

    # ------------------------------------------------------------------
    def append_walks(self, walks: WalkArrays) -> None:
        """Insert walks at the frontier, rolling over to new batches as needed."""
        written = 0
        total = len(walks)
        while written < total:
            frontier = self.frontier
            if frontier is None or frontier.is_full:
                frontier = WalkBatch(self.batch_capacity, self.partition)
                self._batches.append(frontier)
            written += frontier.append(walks, start=written)

    def push_batch(self, batch: WalkBatch) -> None:
        """Insert an existing batch at the head (e.g. evicted from device)."""
        if batch.partition != self.partition:
            raise ValueError(
                f"batch belongs to partition {batch.partition}, queue to "
                f"{self.partition}"
            )
        self._batches.appendleft(batch)

    def pop_batch(self) -> WalkBatch:
        """Fetch the head batch for processing (skips drained empties)."""
        while self._batches:
            batch = self._batches.popleft()
            if not batch.is_empty:
                return batch
        raise IndexError(f"partition {self.partition} has no walks queued")

    def pop_all(self) -> List[WalkBatch]:
        """Drain every non-empty batch (used when a partition is computed)."""
        out = [b for b in self._batches if not b.is_empty]
        self._batches.clear()
        return out

    def compact(self) -> None:
        """Drop empty non-frontier batches (free-list return)."""
        if not self._batches:
            return
        frontier = self._batches[-1]
        kept = deque(b for b in list(self._batches)[:-1] if not b.is_empty)
        kept.append(frontier)
        self._batches = kept

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BatchQueue part={self.partition} batches={self.num_batches} "
            f"walks={self.num_walks}>"
        )
