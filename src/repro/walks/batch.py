"""Fixed-size walk batches (paper §III-B, Figure 6).

A batch is a small fixed-capacity array of walk states; *all walks in a
batch stay in the same graph partition* (the batch-homogeneity invariant),
so any batch can be fully updated given its partition.  Writes are
append-only: the batch at the tail of a partition's queue is the *write
frontier* and receives insertions until full, at which point a fresh batch
takes over (rollover).
"""

from __future__ import annotations

import numpy as np

from repro.walks.state import WalkArrays


class WalkBatch:
    """A fixed-capacity, append-only batch of walk states."""

    __slots__ = ("capacity", "size", "partition", "vertices", "steps", "ids")

    def __init__(self, capacity: int, partition: int) -> None:
        if capacity < 1:
            raise ValueError("batch capacity must be >= 1")
        if partition < 0:
            raise ValueError("partition must be non-negative")
        self.capacity = capacity
        self.partition = partition
        self.size = 0
        self.vertices = np.empty(capacity, dtype=np.int64)
        self.steps = np.empty(capacity, dtype=np.int32)
        self.ids = np.empty(capacity, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return self.size >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    @property
    def free_space(self) -> int:
        return self.capacity - self.size

    def nbytes(self, bytes_per_walk: int) -> int:
        """Transfer size of this batch's *contents* (S_w per walk)."""
        return self.size * bytes_per_walk

    # ------------------------------------------------------------------
    def append(self, walks: WalkArrays, start: int = 0) -> int:
        """Append walks[start:] until the batch fills; returns count written."""
        available = len(walks) - start
        if available < 0:
            raise ValueError("start beyond walks length")
        take = min(self.free_space, available)
        if take:
            end = self.size + take
            self.vertices[self.size : end] = walks.vertices[start : start + take]
            self.steps[self.size : end] = walks.steps[start : start + take]
            self.ids[self.size : end] = walks.ids[start : start + take]
            self.size = end
        return take

    def drain(self) -> WalkArrays:
        """Remove and return all walks (the batch is freed after compute).

        Ownership of the underlying storage transfers to the caller: the
        returned arrays are zero-copy views, so a drained batch must be
        discarded (which is exactly the paper's "the loaded batch is simply
        freed" semantics).
        """
        out = WalkArrays(
            self.vertices[: self.size],
            self.steps[: self.size],
            self.ids[: self.size],
        )
        self.size = 0
        return out

    def contents(self) -> WalkArrays:
        """Copy of current contents without draining (eviction transfer)."""
        return WalkArrays(
            self.vertices[: self.size].copy(),
            self.steps[: self.size].copy(),
            self.ids[: self.size].copy(),
        )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WalkBatch part={self.partition} {self.size}/{self.capacity}>"
        )
