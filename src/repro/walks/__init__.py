"""Out-of-memory walk index management (paper §III-B / §III-C).

The walk index (``current_vertex``, ``walked_steps``, and optional
application state such as ``walk_id``) is stored in fixed-size *batches*;
all walks in a batch currently stay in the same graph partition, so a batch
can always be fully updated given that one partition.  Batches belonging to
a partition form a circular queue whose tail is the append-only *write
frontier*.  A host pool holds everything; a device pool caches at most
``m_w`` walks, with one frontier batch plus one reserved free batch per
partition so frontier rollover never overflows.
"""

from repro.walks.state import WalkArrays
from repro.walks.batch import WalkBatch
from repro.walks.queue import BatchQueue
from repro.walks.pool import HostWalkPool, DeviceWalkPool
from repro.walks.reshuffle import (
    LocalIndex,
    group_by_partition,
    TwoLevelReshuffler,
    DirectWriteReshuffler,
)

__all__ = [
    "WalkArrays",
    "WalkBatch",
    "BatchQueue",
    "HostWalkPool",
    "DeviceWalkPool",
    "LocalIndex",
    "group_by_partition",
    "TwoLevelReshuffler",
    "DirectWriteReshuffler",
]
