"""Walk reshuffling (paper §III-C, Algorithm 1 lines 6-14, Figure 7).

After a batch is updated, its surviving walks may belong to different
partitions and must be inserted into the corresponding write frontiers.
Two implementations are modeled:

* **Two-level caching** (LightTraffic): each SM builds a *local index* in
  shared memory — an atomic counter per partition plus an inverted map sorted
  with counting sort — so global-memory synchronization happens once per
  partition, and writes to the same frontier are coalesced.
* **Direct write** (Fig 12 baseline): every thread performs an atomic on the
  global frontier counter and an uncoalesced scatter store.

Both produce identical walk placements; they differ only in the modeled
kernel time (see :meth:`repro.gpu.kernels.KernelModel.reshuffle_time`).
:class:`LocalIndex` is a faithful, testable port of the shared-memory data
structure itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.units import Seconds
from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL, KernelModel
from repro.walks.pool import DeviceWalkPool
from repro.walks.state import WalkArrays


class LocalIndex:
    """The shared-memory structure of Algorithm 1 (one SM's view).

    ``add(part, tid)`` mimics ``pos = atomicAdd(&localLen[part], 1);
    invertedMap.add(part, pos, tid)``; ``sorted_entries`` mimics
    ``invertedMap.sort()`` via counting sort over the prefix sums of the
    local counters, yielding ``(part, pos, tid)`` triples ordered so that
    threads writing to the same frontier get adjacent target addresses.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.local_len = np.zeros(num_partitions, dtype=np.int64)
        self._entries: List[Tuple[int, int, int]] = []

    def add(self, partition: int, tid: int) -> int:
        """Atomic-add into the local counter; returns the walk's local pos."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        pos = int(self.local_len[partition])
        self.local_len[partition] += 1
        self._entries.append((partition, pos, tid))
        return pos

    def sorted_entries(self) -> List[Tuple[int, int, int]]:
        """Counting-sort the inverted map by (partition, pos)."""
        prefix = np.zeros(self.num_partitions + 1, dtype=np.int64)
        np.cumsum(self.local_len, out=prefix[1:])
        out: List[Tuple[int, int, int]] = [None] * len(self._entries)  # type: ignore
        for part, pos, tid in self._entries:
            out[int(prefix[part]) + pos] = (part, pos, tid)
        return out

    def __len__(self) -> int:
        return len(self._entries)


def group_by_partition(
    walks: WalkArrays, partition_ids: np.ndarray
) -> Dict[int, WalkArrays]:
    """Split walks into per-target-partition groups (vectorized).

    ``partition_ids[i]`` is the partition that ``walks[i]`` now belongs to
    (``findPartition`` of Algorithm 1).  Uses a stable counting-sort-style
    grouping, matching what the two-level local index produces after merge.
    """
    if partition_ids.shape != (len(walks),):
        raise ValueError("partition_ids must align with walks")
    if not len(walks):
        return {}
    order = np.argsort(partition_ids, kind="stable")
    sorted_parts = partition_ids[order]
    # Sort the payload once; per-group WalkArrays are zero-copy views.
    vertices = walks.vertices[order]
    steps = walks.steps[order]
    ids = walks.ids[order]
    boundaries = np.nonzero(np.diff(sorted_parts))[0] + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(walks)]])
    groups: Dict[int, WalkArrays] = {}
    for lo, hi in zip(starts, stops):
        part = int(sorted_parts[lo])
        groups[part] = WalkArrays(
            vertices[lo:hi], steps[lo:hi], ids[lo:hi]
        )
    return groups


class _BaseReshuffler:
    """Shared semantics; subclasses pick the cost mode."""

    mode: str = TWO_LEVEL

    def __init__(
        self,
        kernel_model: KernelModel,
        num_partitions: int,
        backend: Optional[object] = None,
    ) -> None:
        self.kernel_model = kernel_model
        self.num_partitions = num_partitions
        #: execution backend supplying (and wall-clock measuring) the
        #: grouping order; ``None`` = inline stable argsort.
        self._backend = backend
        # Per-walk cost is constant for a fixed P and mode; precompute the
        # serial (1-lane) per-walk duration so the hot path is one multiply.
        # The formula itself lives in KernelModel (single source of truth).
        self._serial_per_walk = kernel_model.reshuffle_serial_seconds(
            num_partitions, self.mode
        )
        self._lanes = kernel_model.calibration.reshuffle_parallel_lanes

    def seconds_for(self, num_walks: int) -> Seconds:
        """Modeled reshuffle duration (``KernelModel.reshuffle_time``)."""
        if num_walks <= 0:
            return Seconds(0.0)
        return Seconds(
            num_walks * self._serial_per_walk / min(num_walks, self._lanes)
        )

    def reshuffle(
        self,
        pool: DeviceWalkPool,
        walks: WalkArrays,
        partition_ids: np.ndarray,
    ) -> Tuple[float, int]:
        """Insert updated walks into device frontiers.

        Returns ``(modeled_seconds, partitions_touched)``.  The grouping is
        a stable counting sort by partition — semantically what the
        two-level local index produces after merging (Algorithm 1).
        """
        n = len(walks)
        if n == 0:
            return 0.0, 0
        if self._backend is not None:
            order = self._backend.group_order(partition_ids)
        else:
            order = np.argsort(partition_ids, kind="stable")
        sorted_parts = partition_ids[order]
        # Guard against corrupted lookups: a negative id would silently wrap
        # into the last partition's counters.
        if sorted_parts[0] < 0 or sorted_parts[-1] >= self.num_partitions:
            raise ValueError(
                f"partition ids out of range [0, {self.num_partitions}): "
                f"min={sorted_parts[0]}, max={sorted_parts[-1]}"
            )
        vertices = walks.vertices[order]
        steps = walks.steps[order]
        ids = walks.ids[order]
        boundaries = np.nonzero(sorted_parts[1:] != sorted_parts[:-1])[0] + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [n]])
        parts = sorted_parts[starts].tolist()
        pool.scatter_sorted(
            parts, stops - starts, vertices, steps, ids, starts, stops
        )
        return self.seconds_for(n), len(parts)


class TwoLevelReshuffler(_BaseReshuffler):
    """LightTraffic's shared-memory two-level reshuffling (§III-C)."""

    mode = TWO_LEVEL


class DirectWriteReshuffler(_BaseReshuffler):
    """Baseline: direct global-memory atomics and scatter writes (Fig 12)."""

    mode = DIRECT_WRITE
