"""Walk state as a struct-of-arrays.

Each walk's state is ``current_vertex`` (the vertex the walk stays at) and
``walked_steps`` (steps moved so far) — the paper's *walk index* — plus a
``walk_id`` for applications that must attribute sampled data back to a walk
(uniform sampling, §IV-A).  Struct-of-arrays keeps every kernel vectorized.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class WalkArrays:
    """A resizable-by-copy bundle of aligned walk-state arrays."""

    __slots__ = ("vertices", "steps", "ids")

    def __init__(
        self, vertices: np.ndarray, steps: np.ndarray, ids: np.ndarray
    ) -> None:
        vertices = np.asarray(vertices, dtype=np.int64)
        steps = np.asarray(steps, dtype=np.int32)
        ids = np.asarray(ids, dtype=np.int64)
        if not (vertices.shape == steps.shape == ids.shape) or vertices.ndim != 1:
            raise ValueError("walk arrays must be aligned 1-D arrays")
        self.vertices = vertices
        self.steps = steps
        self.ids = ids

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "WalkArrays":
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
        )

    @classmethod
    def fresh(cls, start_vertices: np.ndarray, first_id: int = 0) -> "WalkArrays":
        """New walks at the given start vertices, 0 steps walked."""
        start_vertices = np.asarray(start_vertices, dtype=np.int64)
        n = start_vertices.size
        return cls(
            start_vertices.copy(),
            np.zeros(n, dtype=np.int32),
            np.arange(first_id, first_id + n, dtype=np.int64),
        )

    @classmethod
    def concat(cls, chunks: Iterable["WalkArrays"]) -> "WalkArrays":
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return cls.empty()
        return cls(
            np.concatenate([c.vertices for c in chunks]),
            np.concatenate([c.steps for c in chunks]),
            np.concatenate([c.ids for c in chunks]),
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.vertices.size

    def select(self, index: np.ndarray) -> "WalkArrays":
        """Subset by boolean mask or integer index array (copies)."""
        return WalkArrays(
            self.vertices[index], self.steps[index], self.ids[index]
        )

    def slice(self, start: int, stop: int) -> "WalkArrays":
        """Contiguous subset (copies, so callers cannot alias batches)."""
        return WalkArrays(
            self.vertices[start:stop].copy(),
            self.steps[start:stop].copy(),
            self.ids[start:stop].copy(),
        )

    def copy(self) -> "WalkArrays":
        return WalkArrays(
            self.vertices.copy(), self.steps.copy(), self.ids.copy()
        )

    def id_set(self) -> set:
        """Python set of walk ids (testing helper for conservation checks)."""
        return set(int(i) for i in self.ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WalkArrays n={len(self)}>"


def index_bytes_per_walk(with_walk_id: bool = False) -> int:
    """The paper's ``S_w``: 8 bytes (vertex + steps), +8 with ``walk_id``."""
    return 16 if with_walk_id else 8
