"""Typed walk queries accepted by the serving front-end.

A query is the client-facing unit of work: "give me ``walks`` random
walks with these semantics".  Four kinds cover the workloads the paper's
motivating applications issue online:

* :class:`PPRQuery` — personalized PageRank from an explicit seed set
  (recommendation candidates for one user);
* :class:`UniformQuery` — fixed-length DeepWalk-style samples, optionally
  weighted with a configurable transition sampler;
* :class:`MetapathQuery` — typed walks following a cyclic vertex-type
  pattern over a heterogeneous graph;
* :class:`EmbeddingQuery` — node2vec second-order samples for an
  embedding refresh.

Each query knows how to build its algorithm instance
(:meth:`WalkQuery.make_algorithm`) and exposes the two facts the
admission controller needs: whether it may share a coalesced counter-RNG
batch at all (:attr:`WalkQuery.coalescible` — node2vec's subset redraws
cannot), and its :meth:`WalkQuery.batch_key` — the step-semantics
fingerprint two queries must share to ride one batch.  Start-vertex
parameters (PPR seed sets) are deliberately *excluded* from the key:
they only shape each query's own lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.algorithms import (
    MetapathWalk,
    Node2Vec,
    SeedSetPersonalizedPageRank,
    UniformSampling,
)
from repro.algorithms.base import RandomWalkAlgorithm
from repro.graph.csr import CSRGraph

KIND_PPR = "ppr"
KIND_UNIFORM = "uniform"
KIND_METAPATH = "metapath"
KIND_NODE2VEC = "node2vec"

#: Every query kind the front-end admits, in CLI/menu order.
QUERY_KINDS = (KIND_PPR, KIND_UNIFORM, KIND_METAPATH, KIND_NODE2VEC)

#: Hard ceiling on per-query walk length / step budget.  A query is
#: client input: an unbounded ``length`` would size the per-lane step
#: loops (and the multiprocess backend's trajectory tables) directly
#: from the wire, so every step-shaped field is validated against this
#: cap in ``__post_init__`` before it can reach an allocation.
MAX_QUERY_STEPS = 1024


def validated(
    value: float, lo: float, hi: float, what: str = "value"
) -> float:
    """Bounds-check a client-supplied number; the taint sanitizer.

    Returns ``value`` unchanged when ``lo <= value <= hi`` and raises
    :class:`ValueError` otherwise.  The strict lint taint pass
    (``unvalidated-size`` et al.) treats a flow through this helper — or
    through a raising ``__post_init__`` bounds check — as sanitized.
    """
    if not (lo <= value <= hi):
        raise ValueError(f"{what}={value!r} outside [{lo}, {hi}]")
    return value


@dataclass(frozen=True)
class WalkQuery:
    """Base class of one client request for ``walks`` random walks."""

    walks: int

    kind: str = ""

    def __post_init__(self) -> None:
        if self.walks < 1:
            raise ValueError("a query must request at least one walk")

    # ------------------------------------------------------------------
    @property
    def coalescible(self) -> bool:
        """Whether this query's algorithm honors the counter-RNG
        all-lanes contract (the precondition for sharing a batch)."""
        return True

    def batch_key(self) -> Tuple[object, ...]:
        """Step-semantics fingerprint; equal keys may share a batch."""
        raise NotImplementedError

    def make_algorithm(
        self,
        graph: CSRGraph,
        vertex_types: Optional[np.ndarray] = None,
    ) -> RandomWalkAlgorithm:
        """Build a fresh algorithm instance executing this query."""
        raise NotImplementedError


@dataclass(frozen=True)
class PPRQuery(WalkQuery):
    """Personalized PageRank walks from an explicit seed set."""

    sources: Tuple[int, ...] = ()
    stop_prob: float = 0.15
    max_length: int = 64

    kind: str = KIND_PPR

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.sources:
            raise ValueError("a PPR query needs a non-empty seed set")
        if any(v < 0 for v in self.sources):
            raise ValueError("PPR seed vertices must be non-negative")
        if not (0.0 < self.stop_prob <= 1.0):
            raise ValueError(
                f"stop_prob={self.stop_prob!r} outside (0, 1]"
            )
        validated(self.max_length, 1, MAX_QUERY_STEPS, "max_length")

    def batch_key(self) -> Tuple[object, ...]:
        # The seed set shapes start vertices only, never step semantics,
        # so queries of different users still coalesce.
        return (self.kind, self.stop_prob, self.max_length)

    def make_algorithm(
        self,
        graph: CSRGraph,
        vertex_types: Optional[np.ndarray] = None,
    ) -> RandomWalkAlgorithm:
        return SeedSetPersonalizedPageRank(
            sources=self.sources,
            stop_prob=self.stop_prob,
            max_length=self.max_length,
        )


@dataclass(frozen=True)
class UniformQuery(WalkQuery):
    """Fixed-length uniform (optionally weighted) walk samples."""

    length: int = 16
    weighted: bool = False
    sampler: Optional[str] = None

    kind: str = KIND_UNIFORM

    def __post_init__(self) -> None:
        super().__post_init__()
        validated(self.length, 1, MAX_QUERY_STEPS, "length")

    @property
    def coalescible(self) -> bool:
        # The rejection sampler redraws data-dependent lane subsets,
        # which the counter RNG cannot key; such queries run solo.
        probe = UniformSampling(
            length=self.length,
            weighted=self.weighted,
            sampler=self.sampler or UniformSampling.SAMPLER_ALIAS,
        )
        return not probe.uses_subset_draws

    def batch_key(self) -> Tuple[object, ...]:
        return (self.kind, self.length, self.weighted, self.sampler)

    def make_algorithm(
        self,
        graph: CSRGraph,
        vertex_types: Optional[np.ndarray] = None,
    ) -> RandomWalkAlgorithm:
        return UniformSampling(
            length=self.length,
            weighted=self.weighted,
            sampler=self.sampler or UniformSampling.SAMPLER_ALIAS,
        )


@dataclass(frozen=True)
class MetapathQuery(WalkQuery):
    """Typed walks following a cyclic vertex-type metapath."""

    metapath: Tuple[int, ...] = ()
    length: int = 16

    kind: str = KIND_METAPATH

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.metapath) < 2:
            raise ValueError("a metapath query needs at least two types")
        if any(t < 0 for t in self.metapath):
            raise ValueError("metapath vertex types must be non-negative")
        validated(self.length, 1, MAX_QUERY_STEPS, "length")

    def batch_key(self) -> Tuple[object, ...]:
        return (self.kind, self.metapath, self.length)

    def make_algorithm(
        self,
        graph: CSRGraph,
        vertex_types: Optional[np.ndarray] = None,
    ) -> RandomWalkAlgorithm:
        if vertex_types is None:
            raise ValueError(
                "metapath queries need the session's vertex-type table"
            )
        return MetapathWalk(
            vertex_types=vertex_types,
            metapath=self.metapath,
            length=self.length,
        )


@dataclass(frozen=True)
class EmbeddingQuery(WalkQuery):
    """node2vec second-order samples for an embedding request."""

    length: int = 16
    return_param: float = 1.0
    inout_param: float = 1.0

    kind: str = KIND_NODE2VEC

    def __post_init__(self) -> None:
        super().__post_init__()
        validated(self.length, 1, MAX_QUERY_STEPS, "length")
        if self.return_param <= 0 or self.inout_param <= 0:
            raise ValueError("node2vec p/q parameters must be positive")

    @property
    def coalescible(self) -> bool:
        # node2vec's rejection rounds redraw pending lanes only; it is
        # incompatible with counter-RNG coalescing and always runs solo.
        return False

    def batch_key(self) -> Tuple[object, ...]:
        return (self.kind, self.length, self.return_param, self.inout_param)

    def make_algorithm(
        self,
        graph: CSRGraph,
        vertex_types: Optional[np.ndarray] = None,
    ) -> RandomWalkAlgorithm:
        return Node2Vec(
            length=self.length,
            return_param=self.return_param,
            inout_param=self.inout_param,
        )
