"""Coalesced query batches and the per-query standalone reference path.

The admission controller merges compatible queries (equal
:meth:`~repro.serve.queries.WalkQuery.batch_key`) into one
:class:`CoalescedBatch`: a facade algorithm whose lanes are the
concatenation of every member query's walks.  Bit-identical per-query
replay is the design constraint — a walk must step exactly as it would
in a standalone run of its own query — and it holds because

* start vertices are computed *per query* from that query's own derived
  seed (``seeded_rng(query_seed)`` is bit-identical to the fallback
  generator a standalone ``CounterRNG(query_seed)`` run would use), and
* stepping randomness is keyed per lane by ``(query_seed,
  local_walk_id, step, draw)`` through
  :class:`~repro.core.prng.TenantCounterRNG`, which the engine
  instantiates when it sees the batch's :attr:`CoalescedBatch.tenant_lanes`
  tables — the same key a standalone counter run hashes.

:func:`run_standalone` is both the reference implementation the parity
suite compares against and the execution path for non-coalescible
queries (node2vec), which run solo with the sequential RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.prng import seeded_rng
from repro.core.stats import RunStats
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphPartition
from repro.serve.queries import WalkQuery
from repro.walks.state import WalkArrays

_SEED_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


class RecordingAlgorithm(RandomWalkAlgorithm):
    """Delegating wrapper that records each walk's terminal state.

    One-shot runs normally keep only aggregate results (visit counts,
    recorded paths); serving needs the per-walk outcome to route walks
    back to requests and to compare coalesced against standalone
    execution.  The wrapper forwards every algorithm hook to ``inner``
    unchanged and additionally records, per walk id, the step count and
    the final vertex at termination — so trajectories are untouched.
    """

    def __init__(self, inner: RandomWalkAlgorithm, num_walks: int) -> None:
        self.inner = inner
        self.name = inner.name
        self.carries_walk_id = inner.carries_walk_id
        self.fixed_length = inner.fixed_length
        self.transition_sampler = inner.transition_sampler
        self.uses_subset_draws = inner.uses_subset_draws
        self.final_vertices = np.full(num_walks, -1, dtype=np.int64)
        self.steps_taken = np.zeros(num_walks, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        return self.inner.bytes_per_walk

    def set_transition_sampler(self, name: str) -> None:
        self.inner.set_transition_sampler(name)
        self.transition_sampler = self.inner.transition_sampler
        self.uses_subset_draws = self.inner.uses_subset_draws

    def consume_sampler_fallbacks(self) -> int:
        return self.inner.consume_sampler_fallbacks()

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.inner.start_vertices(graph, num_walks, rng)

    def on_start(self, walks: WalkArrays, graph: CSRGraph) -> None:
        self.inner.on_start(walks, graph)

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.step_once(
            vertices, steps, ids, partition, rng, graph
        )

    def observe(
        self,
        vertices: np.ndarray,
        ids: np.ndarray,
        terminated: np.ndarray,
    ) -> None:
        self.inner.observe(vertices, ids, terminated)
        self.steps_taken[ids] += 1
        if terminated.any():
            self.final_vertices[ids[terminated]] = vertices[terminated]

    def expected_total_steps(self, num_walks: int) -> Optional[float]:
        return self.inner.expected_total_steps(num_walks)


class CoalescedBatch(RandomWalkAlgorithm):
    """One shared frontier batch executing several compatible queries.

    ``entries`` pairs every member query with its derived seed; the
    head query's algorithm instance provides the step semantics (the
    batch key guarantees all members agree on them).  The inner
    algorithm's *aggregate* hooks (``on_start``/``observe``) are not
    delegated: the inner instance never saw ``start_vertices``, so its
    application state (e.g. PPR visit counts) is uninitialized, and the
    serve path's observable outcome is the per-walk record, not the
    aggregate.  Trajectories are unaffected — ``observe`` never feeds
    back into stepping.
    """

    def __init__(
        self,
        graph: CSRGraph,
        entries: Sequence[Tuple[WalkQuery, int]],
        vertex_types: Optional[np.ndarray] = None,
    ) -> None:
        if not entries:
            raise ValueError("a coalesced batch needs at least one query")
        head = entries[0][0]
        key = head.batch_key()
        for query, _ in entries[1:]:
            if query.batch_key() != key:
                raise ValueError(
                    "all queries of a coalesced batch must share one "
                    "batch key"
                )
        self.entries = list(entries)
        self.vertex_types = vertex_types
        self.inner = head.make_algorithm(graph, vertex_types)
        if self.inner.uses_subset_draws:
            raise ValueError(
                f"query kind {head.kind!r} cannot be coalesced: its "
                f"algorithm redraws lane subsets"
            )
        self.name = self.inner.name
        self.carries_walk_id = self.inner.carries_walk_id
        self.fixed_length = self.inner.fixed_length
        self.transition_sampler = self.inner.transition_sampler
        self.uses_subset_draws = False
        counts = [query.walks for query, _ in self.entries]
        self.total_walks = int(sum(counts))
        self.offsets = np.concatenate(
            ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
        )
        with np.errstate(over="ignore"):
            lane_seeds = np.concatenate(
                [
                    np.full(
                        query.walks,
                        np.uint64(seed) & _SEED_MASK,
                        dtype=np.uint64,
                    )
                    for query, seed in self.entries
                ]
            )
        lane_locals = np.concatenate(
            [
                np.arange(query.walks, dtype=np.uint64)
                for query, _ in self.entries
            ]
        )
        #: the engine's ``_make_rng`` hook: per-global-lane (query seed,
        #: local walk id) tables keying the TenantCounterRNG.
        self.tenant_lanes = (lane_seeds, lane_locals)
        self.final_vertices = np.full(self.total_walks, -1, dtype=np.int64)
        self.steps_taken = np.zeros(self.total_walks, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def bytes_per_walk(self) -> int:
        return self.inner.bytes_per_walk

    def consume_sampler_fallbacks(self) -> int:
        return self.inner.consume_sampler_fallbacks()

    def start_vertices(
        self, graph: CSRGraph, num_walks: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_walks != self.total_walks:
            raise ValueError(
                f"batch seeds {self.total_walks} walks, engine asked for "
                f"{num_walks}"
            )
        # Per-query start vertices from each query's own stream —
        # bit-identical to what that query's standalone counter run
        # computes through its init-fallback generator.
        parts: List[np.ndarray] = []
        for query, seed in self.entries:
            algorithm = query.make_algorithm(graph, self.vertex_types)
            parts.append(
                algorithm.start_vertices(
                    graph, query.walks, seeded_rng(seed)
                )
            )
        return np.concatenate(parts)

    def step_once(
        self,
        vertices: np.ndarray,
        steps: np.ndarray,
        ids: np.ndarray,
        partition: GraphPartition,
        rng: np.random.Generator,
        graph: Optional[CSRGraph],
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.step_once(
            vertices, steps, ids, partition, rng, graph
        )

    def observe(
        self,
        vertices: np.ndarray,
        ids: np.ndarray,
        terminated: np.ndarray,
    ) -> None:
        self.steps_taken[ids] += 1
        if terminated.any():
            self.final_vertices[ids[terminated]] = vertices[terminated]

    # ------------------------------------------------------------------
    def lane_slice(self, index: int) -> slice:
        """Global-lane slice of the ``index``-th member query."""
        return slice(
            int(self.offsets[index]), int(self.offsets[index + 1])
        )


@dataclass(frozen=True)
class StandaloneOutcome:
    """Per-walk results of one query executed on its own engine."""

    final_vertices: np.ndarray
    steps_taken: np.ndarray
    stats: RunStats


def standalone_config(
    config: EngineConfig, seed: int, coalescible: bool
) -> EngineConfig:
    """The engine config a query's standalone reference run uses."""
    return config.with_options(
        seed=seed,
        rng_mode="counter" if coalescible else "sequential",
    )


def run_standalone(
    graph: CSRGraph,
    query: WalkQuery,
    seed: int,
    config: EngineConfig,
    vertex_types: Optional[np.ndarray] = None,
) -> StandaloneOutcome:
    """Execute one query on its own engine run (the parity reference).

    Coalescible queries run under the counter RNG seeded with the
    query's derived seed — the exact stream the coalesced path keys per
    lane.  Non-coalescible queries (node2vec) run sequentially; the
    serve path executes them through this very function, so parity is
    by construction.
    """
    algorithm = RecordingAlgorithm(
        query.make_algorithm(graph, vertex_types), query.walks
    )
    cfg = standalone_config(config, seed, query.coalescible)
    stats = LightTrafficEngine(graph, algorithm, cfg).run(query.walks)
    return StandaloneOutcome(
        final_vertices=algorithm.final_vertices,
        steps_taken=algorithm.steps_taken,
        stats=stats,
    )
