"""The serving front-end: admission, coalescing, completion routing.

A :class:`ServeSession` simulates concurrent clients submitting typed
walk queries against one resident graph.  The loop runs on the *engine's
simulated clock* (no wall time anywhere, so sessions replay
bit-identically):

1. **Arrival** — ``workers`` simulated clients submit queries either
   *closed-loop* (each client submits its next query the moment its
   previous one completes — the classic saturating load harness) or
   *open-loop* (queries arrive on a seeded Poisson process at
   ``arrival_rate`` per simulated second, independent of completions —
   the latency-under-overload view).
2. **Admission** — arrivals are admitted in order, assigned a request
   id and a per-query derived seed, and announced via ``QueryAdmitted``.
3. **Coalescing** — the head-of-line query plus every pending
   compatible query (same :meth:`~repro.serve.queries.WalkQuery.batch_key`,
   coalescible, within the ``max_batch_walks`` budget) form one
   :class:`~repro.serve.batch.CoalescedBatch` and ride one engine run;
   non-coalescible queries (node2vec) run solo through
   :func:`~repro.serve.batch.run_standalone`.
4. **Completion routing** — the batch's per-walk records are sliced back
   per request; each query's ``QueryCompleted`` carries queue/service/
   total latency with ``queue + service == total`` exactly.

Stats, metrics and the sanitizer ride the session's own
:class:`~repro.core.events.EventBus` (the per-batch engine runs keep
their private buses); the sanitizer's ``request-conservation`` rule
audits that every admitted query completes exactly once with exactly
its requested walks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.events import EventBus, QueryAdmitted, QueryCompleted, RunCompleted
from repro.core.metrics import MetricsCollector
from repro.core.prng import derive_seed, seeded_rng
from repro.core.stats import RunStats, StatsCollector
from repro.graph.csr import CSRGraph
from repro.serve.batch import CoalescedBatch, run_standalone
from repro.serve.queries import (
    KIND_METAPATH,
    KIND_PPR,
    KIND_UNIFORM,
    QUERY_KINDS,
    EmbeddingQuery,
    MetapathQuery,
    PPRQuery,
    UniformQuery,
    WalkQuery,
)

ARRIVAL_CLOSED = "closed"
ARRIVAL_OPEN = "open"

ARRIVAL_MODES = (ARRIVAL_CLOSED, ARRIVAL_OPEN)

#: Percentiles every latency summary reports.
LATENCY_PERCENTILES = (50, 90, 99)


def nearest_rank(values: Sequence[float], percentile: int) -> float:
    """The classic nearest-rank percentile (monotone in ``percentile``)."""
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(percentile / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class RequestResult:
    """Everything routed back to one client query."""

    request_id: int
    query: WalkQuery
    kind: str
    walks: int
    seed: int
    batch: int
    arrival: float
    queue_seconds: float
    service_seconds: float
    total_seconds: float
    final_vertices: np.ndarray
    steps_taken: np.ndarray


@dataclass
class ServeReport:
    """Outcome of one :meth:`ServeSession.run` call."""

    results: List[RequestResult]
    stats: RunStats
    makespan: float
    batches: int
    coalesced_queries: int
    engine_steps: int
    engine_iterations: int
    engine_sanitizers_clean: bool
    sanitizer: Optional[Dict[str, object]] = None
    metrics: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def latency_percentiles(self) -> Dict[str, Dict[str, float]]:
        """p50/p90/p99 of queue, service and total latency (seconds)."""
        series = {
            "queue_seconds": [r.queue_seconds for r in self.results],
            "service_seconds": [r.service_seconds for r in self.results],
            "total_seconds": [r.total_seconds for r in self.results],
        }
        return {
            name: {
                f"p{percentile}": nearest_rank(values, percentile)
                for percentile in LATENCY_PERCENTILES
            }
            for name, values in series.items()
        }

    @property
    def walks_served(self) -> int:
        return int(sum(r.walks for r in self.results))

    def throughput(self) -> Dict[str, float]:
        """Simulated service rates over the session makespan."""
        if self.makespan <= 0:
            return {
                "queries_per_second": 0.0,
                "walks_per_second": 0.0,
                "steps_per_second": 0.0,
            }
        return {
            "queries_per_second": len(self.results) / self.makespan,
            "walks_per_second": self.walks_served / self.makespan,
            "steps_per_second": self.engine_steps / self.makespan,
        }

    def summary_dict(self) -> Dict[str, object]:
        """JSON-serializable session summary (CLI / bench payloads)."""
        sanitizer = self.sanitizer or {}
        return {
            "queries": len(self.results),
            "walks_served": self.walks_served,
            "batches": self.batches,
            "coalesced_queries": self.coalesced_queries,
            "makespan": self.makespan,
            "engine_steps": self.engine_steps,
            "engine_iterations": self.engine_iterations,
            "latency": self.latency_percentiles(),
            "throughput": self.throughput(),
            "engine_sanitizers_clean": self.engine_sanitizers_clean,
            "sanitizer_clean": bool(sanitizer.get("clean", True)),
            "queries_admitted": self.stats.queries_admitted,
            "queries_completed": self.stats.queries_completed,
        }


@dataclass
class _Admitted:
    """One admitted query waiting in the shared pending frontier."""

    request_id: int
    query: WalkQuery
    seed: int
    arrival: float
    worker: int


@dataclass
class _Submission:
    """One not-yet-admitted submission, ordered by (arrival, order)."""

    arrival: float
    order: int
    query: WalkQuery
    worker: int

    def sort_key(self) -> Tuple[float, int]:
        return (self.arrival, self.order)


class ServeSession:
    """Closed/open-loop walk-serving session over one resident graph."""

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[EngineConfig] = None,
        *,
        workers: int = 4,
        arrival: str = ARRIVAL_CLOSED,
        arrival_rate: Optional[float] = None,
        max_batch_walks: int = 512,
        vertex_types: Optional[np.ndarray] = None,
        collect_metrics: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"arrival must be one of {', '.join(ARRIVAL_MODES)}"
            )
        if arrival == ARRIVAL_OPEN:
            if arrival_rate is None or arrival_rate <= 0:
                raise ValueError(
                    "open-loop arrival needs arrival_rate > 0 "
                    "(queries per simulated second)"
                )
        self.graph = graph
        self.config = config if config is not None else EngineConfig()
        self.workers = workers
        self.arrival = arrival
        self.arrival_rate = arrival_rate
        if max_batch_walks < 1:
            raise ValueError("max_batch_walks must be >= 1")
        self.max_batch_walks = max_batch_walks
        self.vertex_types = vertex_types
        self.collect_metrics = collect_metrics

    # ------------------------------------------------------------------
    def _submissions(
        self, queries: Sequence[WalkQuery]
    ) -> Tuple[List[_Submission], Dict[int, List[WalkQuery]]]:
        """Initial submissions + each worker's remaining closed-loop queue."""
        per_worker: Dict[int, List[WalkQuery]] = {
            worker: [] for worker in range(self.workers)
        }
        for index, query in enumerate(queries):
            per_worker[index % self.workers].append(query)
        initial: List[_Submission] = []
        if self.arrival == ARRIVAL_OPEN:
            rate = float(self.arrival_rate or 1.0)
            rng = seeded_rng(self.config.seed, "serve-arrivals")
            clock = 0.0
            order = 0
            for index, query in enumerate(queries):
                # Poisson process: exponential interarrivals.
                gap = -math.log1p(-float(rng.random())) / rate
                clock += gap
                initial.append(
                    _Submission(clock, order, query, index % self.workers)
                )
                order += 1
            return initial, {worker: [] for worker in per_worker}
        order = 0
        remaining: Dict[int, List[WalkQuery]] = {}
        for worker in sorted(per_worker):
            queue = per_worker[worker]
            if queue:
                initial.append(_Submission(0.0, order, queue[0], worker))
                order += 1
                remaining[worker] = queue[1:]
            else:
                remaining[worker] = []
        return initial, remaining

    def _coalesce(
        self, head: _Admitted, pending: List[_Admitted]
    ) -> List[_Admitted]:
        """Pick the head's batch: itself + compatible pending queries."""
        batch = [head]
        if not head.query.coalescible:
            return batch
        budget = self.max_batch_walks - head.query.walks
        key = head.query.batch_key()
        for candidate in list(pending):
            if budget <= 0:
                break
            if not candidate.query.coalescible:
                continue
            if candidate.query.batch_key() != key:
                continue
            if candidate.query.walks > budget:
                continue
            pending.remove(candidate)
            batch.append(candidate)
            budget -= candidate.query.walks
        return batch

    def _execute(
        self, batch: List[_Admitted], batch_index: int
    ) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], RunStats]:
        """Run one batch; returns per-member (final_vertices, steps)."""
        head = batch[0]
        if head.query.coalescible:
            coalesced = CoalescedBatch(
                self.graph,
                [(member.query, member.seed) for member in batch],
                vertex_types=self.vertex_types,
            )
            cfg = self.config.with_options(
                seed=derive_seed(
                    self.config.seed, f"serve-batch-{batch_index}"
                ),
                rng_mode="counter",
            )
            stats = LightTrafficEngine(self.graph, coalesced, cfg).run(
                coalesced.total_walks
            )
            slices = [
                (
                    coalesced.final_vertices[coalesced.lane_slice(i)],
                    coalesced.steps_taken[coalesced.lane_slice(i)],
                )
                for i in range(len(batch))
            ]
            return slices, stats
        outcome = run_standalone(
            self.graph,
            head.query,
            head.seed,
            self.config,
            vertex_types=self.vertex_types,
        )
        return [
            (outcome.final_vertices, outcome.steps_taken)
        ], outcome.stats

    # ------------------------------------------------------------------
    def run(self, queries: Sequence[WalkQuery]) -> ServeReport:
        """Serve every query; returns the demultiplexed session report."""
        if not queries:
            raise ValueError("a serve session needs at least one query")
        for query in queries:
            # Admission gate: an oversized query would drive the
            # coalescing budget negative and could never be scheduled.
            if query.walks > self.max_batch_walks:
                raise ValueError(
                    f"query requests {query.walks} walks but "
                    f"max_batch_walks={self.max_batch_walks}; split the "
                    "query or raise --max-batch-walks"
                )
        bus = EventBus()
        stats = RunStats(
            system="serve",
            algorithm="+".join(
                sorted({query.kind for query in queries})
            ),
            graph=self.graph.name or "graph",
            num_walks=int(sum(query.walks for query in queries)),
        )
        metrics = MetricsCollector() if self.collect_metrics else None
        observers = [bus.attach(StatsCollector(stats, metrics=metrics))]
        if metrics is not None:
            observers.append(bus.attach(metrics))
        sanitizer = None
        if self.config.sanitize:
            from repro.analysis import Sanitizer

            sanitizer = Sanitizer()
            observers.append(bus.attach(sanitizer))

        initial, closed_queues = self._submissions(queries)
        upcoming: List[Tuple[float, int, _Submission]] = [
            (sub.arrival, sub.order, sub) for sub in initial
        ]
        heapq.heapify(upcoming)
        order = len(initial)
        pending: List[_Admitted] = []
        results: List[RequestResult] = []
        next_request_id = 0
        clock = 0.0
        batches = 0
        coalesced_queries = 0
        engine_steps = 0
        engine_iterations = 0
        engines_clean = True

        def admit(upto: float) -> None:
            nonlocal next_request_id
            while upcoming and upcoming[0][0] <= upto:
                _, _, sub = heapq.heappop(upcoming)
                rid = next_request_id
                next_request_id += 1
                seed = derive_seed(self.config.seed, f"serve-query-{rid}")
                pending.append(
                    _Admitted(rid, sub.query, seed, sub.arrival, sub.worker)
                )
                bus.emit(
                    QueryAdmitted(
                        request_id=rid,
                        kind=sub.query.kind,
                        walks=sub.query.walks,
                        arrival=sub.arrival,
                    )
                )

        try:
            while pending or upcoming:
                if not pending:
                    clock = max(clock, upcoming[0][0])
                admit(clock)
                head = pending.pop(0)
                batch = self._coalesce(head, pending)
                if len(batch) > 1:
                    coalesced_queries += len(batch)
                batch_start = clock
                outcomes, run_stats = self._execute(batch, batches)
                engine_steps += run_stats.total_steps
                engine_iterations += run_stats.iterations
                if run_stats.sanitizer is not None:
                    engines_clean = engines_clean and bool(
                        run_stats.sanitizer.get("clean", False)
                    )
                service = run_stats.total_time
                clock = batch_start + service
                for member, (finals, steps) in zip(batch, outcomes):
                    queue_seconds = batch_start - member.arrival
                    total_seconds = queue_seconds + service
                    routed = int(np.count_nonzero(finals >= 0))
                    bus.emit(
                        QueryCompleted(
                            request_id=member.request_id,
                            kind=member.query.kind,
                            walks=routed,
                            batch=batches,
                            queue_seconds=queue_seconds,
                            service_seconds=service,
                            total_seconds=total_seconds,
                        )
                    )
                    results.append(
                        RequestResult(
                            request_id=member.request_id,
                            query=member.query,
                            kind=member.query.kind,
                            walks=routed,
                            seed=member.seed,
                            batch=batches,
                            arrival=member.arrival,
                            queue_seconds=queue_seconds,
                            service_seconds=service,
                            total_seconds=total_seconds,
                            final_vertices=finals,
                            steps_taken=steps,
                        )
                    )
                    queue = closed_queues.get(member.worker)
                    if queue:
                        nxt = queue.pop(0)
                        heapq.heappush(
                            upcoming,
                            (
                                clock,
                                order,
                                _Submission(clock, order, nxt, member.worker),
                            ),
                        )
                        order += 1
                batches += 1
            bus.emit(
                RunCompleted(
                    total_time=clock,
                    finished_walks=int(sum(r.walks for r in results)),
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
        return ServeReport(
            results=results,
            stats=stats,
            makespan=clock,
            batches=batches,
            coalesced_queries=coalesced_queries,
            engine_steps=engine_steps,
            engine_iterations=engine_iterations,
            engine_sanitizers_clean=engines_clean,
            sanitizer=sanitizer.summary() if sanitizer is not None else None,
            metrics=metrics.snapshot() if metrics is not None else None,
        )


# ----------------------------------------------------------------------
# Workload generation (CLI / bench)
# ----------------------------------------------------------------------
def make_vertex_types(
    graph: CSRGraph, seed: Optional[int], num_types: int = 3
) -> np.ndarray:
    """The session's heterogeneous-type table (metapath queries)."""
    from repro.algorithms import random_vertex_types

    return random_vertex_types(
        graph.num_vertices, num_types, derive_seed(seed, "serve-types")
    )


def default_workload(
    graph: CSRGraph,
    kinds: Sequence[str] = QUERY_KINDS,
    queries: int = 16,
    seed: Optional[int] = None,
) -> List[WalkQuery]:
    """A deterministic mixed workload cycling through ``kinds``.

    Walk counts and PPR seed sets vary per query through a derived
    stream, so the workload exercises unequal lane counts while staying
    a pure function of ``(kinds, queries, seed)``.
    """
    if queries < 1:
        raise ValueError("queries must be >= 1")
    if not kinds:
        raise ValueError("kinds must not be empty")
    for kind in kinds:
        if kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {kind!r}; choose from "
                f"{', '.join(QUERY_KINDS)}"
            )
    rng = seeded_rng(seed, "serve-workload")
    num_vertices = graph.num_vertices
    out: List[WalkQuery] = []
    for index in range(queries):
        kind = kinds[index % len(kinds)]
        walks = int(rng.integers(4, 17))
        if kind == KIND_PPR:
            sources = tuple(
                int(v) for v in rng.integers(0, num_vertices, size=3)
            )
            out.append(
                PPRQuery(walks=walks, sources=sources, max_length=24)
            )
        elif kind == KIND_UNIFORM:
            out.append(UniformQuery(walks=walks, length=12))
        elif kind == KIND_METAPATH:
            out.append(
                MetapathQuery(walks=walks, metapath=(0, 1), length=12)
            )
        else:
            out.append(EmbeddingQuery(walks=walks, length=10))
    return out
