"""Walk-serving front-end (ROADMAP item 1).

The package turns the one-shot batch engine into a request service:
typed queries (:mod:`repro.serve.queries`) arrive from simulated
concurrent clients, an admission controller coalesces compatible queries
into shared counter-RNG batches (:mod:`repro.serve.batch`), and a
completion router demultiplexes finished walks back per request with
queue/service/total latency accounting (:mod:`repro.serve.session`).
Coalesced execution is bit-identical per query to a standalone run with
the same derived seed — the property ``tests/test_serve_parity.py``
pins and the ``repro bench serve`` parity gate re-checks on every run.
"""

from repro.serve.batch import (
    CoalescedBatch,
    RecordingAlgorithm,
    StandaloneOutcome,
    run_standalone,
    standalone_config,
)
from repro.serve.queries import (
    KIND_METAPATH,
    KIND_NODE2VEC,
    KIND_PPR,
    KIND_UNIFORM,
    MAX_QUERY_STEPS,
    QUERY_KINDS,
    EmbeddingQuery,
    MetapathQuery,
    PPRQuery,
    UniformQuery,
    WalkQuery,
    validated,
)
from repro.serve.session import (
    ARRIVAL_CLOSED,
    ARRIVAL_MODES,
    ARRIVAL_OPEN,
    LATENCY_PERCENTILES,
    RequestResult,
    ServeReport,
    ServeSession,
    default_workload,
    make_vertex_types,
    nearest_rank,
)

__all__ = [
    "ARRIVAL_CLOSED",
    "ARRIVAL_MODES",
    "ARRIVAL_OPEN",
    "CoalescedBatch",
    "EmbeddingQuery",
    "KIND_METAPATH",
    "KIND_NODE2VEC",
    "KIND_PPR",
    "KIND_UNIFORM",
    "LATENCY_PERCENTILES",
    "MAX_QUERY_STEPS",
    "MetapathQuery",
    "PPRQuery",
    "QUERY_KINDS",
    "RecordingAlgorithm",
    "RequestResult",
    "ServeReport",
    "ServeSession",
    "StandaloneOutcome",
    "UniformQuery",
    "WalkQuery",
    "default_workload",
    "make_vertex_types",
    "nearest_rank",
    "run_standalone",
    "standalone_config",
    "validated",
]
