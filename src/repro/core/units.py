"""Unit-of-measure aliases threaded through the cost stack.

Everything this reproduction produces is analytic cost math — seconds,
cycles, bytes, cache lines, walk counts, link packets — flowing between
the :mod:`repro.gpu` cost models, the simulated timeline and the
scheduler.  A silently-mixed unit (cycles added to seconds, bytes
compared to walk counts) corrupts every downstream figure without any
runtime error, so each quantity gets its own :func:`typing.NewType`
alias:

* the aliases are zero-cost at runtime (``Seconds(x) is x``);
* mypy treats them as distinct types, so an annotated function cannot
  return a raw expression without the author asserting its unit;
* the static unit pass (:mod:`repro.analysis.static.unitcheck`) reads
  these annotations as ground truth when inferring the dimension of an
  expression, and flags arithmetic that mixes dimensions.

Derived units are expressed as exponent vectors over the six base
dimensions (:data:`BASE_DIMENSIONS`); :data:`UNIT_DIMENSIONS` maps every
alias name to its vector, e.g. ``Hertz`` is ``cycles^1 * seconds^-1``
so ``Cycles / Hertz`` cancels to ``Seconds`` under the pass's
dimensional arithmetic.

Conversions between dimensions are spelled out by the helpers at the
bottom — :func:`seconds_from_cycles` is the blessed cycles→seconds
boundary (next to :meth:`repro.gpu.device.DeviceSpec.cycles_to_seconds`)
and the thing the ``cycles-vs-seconds`` rule points at.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, NewType

# ---------------------------------------------------------------------------
# Base quantities
# ---------------------------------------------------------------------------

#: Simulated wall-clock time (stream timestamps, durations, latencies).
Seconds = NewType("Seconds", float)

#: GPU/CPU clock cycles (per-step kernel costs before the clock divide).
Cycles = NewType("Cycles", float)

#: Memory / transfer sizes.
Bytes = NewType("Bytes", int)

#: Fractional byte quantities (per-walk averages, scaled traffic).
BytesF = NewType("BytesF", float)

#: PCIe cache-line counts (zero-copy traffic granularity).
CacheLines = NewType("CacheLines", int)

#: Walk counts (pool sizes, batch sizes, migration payloads).
Walks = NewType("Walks", int)

#: Peer-link packet counts (P2P transfer granularity).
Packets = NewType("Packets", int)

# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------

#: Clock rates: cycles per second.
Hertz = NewType("Hertz", float)

#: Link / memory bandwidth: bytes per second.
BytesPerSecond = NewType("BytesPerSecond", float)

#: Kernel throughput: walk steps per second (steps are dimensionless
#: counts; the alias documents intent for readers and mypy only).
StepsPerSecond = NewType("StepsPerSecond", float)


#: The six base dimensions of the cost stack's unit lattice, with the
#: short symbol the static pass uses in messages.
BASE_DIMENSIONS: Mapping[str, str] = {
    "seconds": "s",
    "cycles": "cy",
    "bytes": "B",
    "cache_lines": "line",
    "walks": "walk",
    "packets": "pkt",
}

#: Dimension vector of every unit alias: ``{base dimension: exponent}``.
#: The static unit pass resolves annotations through this table; an
#: alias missing here is invisible to the pass (mypy still checks it).
UNIT_DIMENSIONS: Dict[str, Dict[str, int]] = {
    "Seconds": {"seconds": 1},
    "Cycles": {"cycles": 1},
    "Bytes": {"bytes": 1},
    "BytesF": {"bytes": 1},
    "CacheLines": {"cache_lines": 1},
    "Walks": {"walks": 1},
    "Packets": {"packets": 1},
    "Hertz": {"cycles": 1, "seconds": -1},
    "BytesPerSecond": {"bytes": 1, "seconds": -1},
    "StepsPerSecond": {"seconds": -1},
}


# ---------------------------------------------------------------------------
# Blessed conversions (the only sanctioned dimension boundaries)
# ---------------------------------------------------------------------------

def seconds_from_cycles(cycles: float, clock_hz: float) -> Seconds:
    """Convert a cycle count to seconds at ``clock_hz``.

    The cycles→seconds boundary of the cost stack; arithmetic mixing the
    two dimensions without passing through here (or through
    :meth:`repro.gpu.device.DeviceSpec.cycles_to_seconds`) is flagged by
    the ``cycles-vs-seconds`` static rule.
    """
    if clock_hz <= 0:
        raise ValueError("clock_hz must be positive")
    return Seconds(cycles / clock_hz)


def seconds_from_bytes(nbytes: float, bandwidth: float) -> Seconds:
    """Transfer time of ``nbytes`` at ``bandwidth`` bytes/second."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return Seconds(nbytes / bandwidth)


def cache_lines_from_bytes(nbytes: int, cacheline_bytes: int) -> CacheLines:
    """Whole cache lines covering ``nbytes`` (zero-copy granularity)."""
    if cacheline_bytes < 1:
        raise ValueError("cacheline_bytes must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return CacheLines(-(-nbytes // cacheline_bytes))


def packets_from_bytes(nbytes: int, packet_bytes: int) -> Packets:
    """Whole link packets covering ``nbytes`` (P2P granularity)."""
    if packet_bytes < 1:
        raise ValueError("packet_bytes must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return Packets(math.ceil(nbytes / packet_bytes))
