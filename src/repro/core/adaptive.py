"""Adaptive zero-copy scheduling (paper §III-E).

When a partition's computing load is light (stragglers), explicitly loading
the whole partition of size ``S_p`` wastes the link; accessing the few
required cache lines through zero copy is cheaper.  The paper's rule:
estimate zero-copy traffic as ``alpha * w`` (``alpha`` ~ 256 bytes per walk
per iteration, empirically insensitive) and use zero copy iff
``alpha * w < S_p``.
"""

from __future__ import annotations

from repro.core.config import COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION


class AdaptivePolicy:
    """Decides explicit copy vs zero copy for each graph-partition load."""

    def __init__(
        self,
        mode: str = COPY_ADAPTIVE,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        if mode not in (COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO):
            raise ValueError(f"unknown copy mode {mode!r}")
        self.mode = mode
        self.alpha = calibration.zero_copy_alpha_bytes
        #: alpha adjusted for the substrate's actual zero-copy cost (see
        #: ``Calibration.zero_copy_cost_factor``); the decision rule is the
        #: paper's alpha*w < S_p with this effective alpha.
        self.effective_alpha = (
            calibration.zero_copy_alpha_bytes
            * calibration.zero_copy_cost_factor
        )

    def should_zero_copy(self, partition_bytes: int, num_walks: int) -> bool:
        """Whether to serve this partition through zero copy this iteration."""
        if partition_bytes <= 0:
            raise ValueError("partition_bytes must be positive")
        if num_walks < 0:
            raise ValueError("num_walks must be non-negative")
        if self.mode == COPY_EXPLICIT:
            return False
        if self.mode == COPY_ZERO:
            return True
        return self.effective_alpha * num_walks < partition_bytes

    def zero_copy_traffic(self, num_walks: int) -> int:
        """Estimated zero-copy bytes to finish ``num_walks`` this iteration."""
        return int(self.alpha * num_walks)

    def density_threshold(self, bytes_per_walk: int) -> float:
        """Walk density below which zero copy engages (§IV-D: D < S_w/alpha,
        with the substrate's effective alpha)."""
        return bytes_per_walk / self.effective_alpha
