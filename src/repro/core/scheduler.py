"""Partition / batch / eviction scheduling policies (paper §III-D).

The scheduler answers four questions each iteration:

1. *Which partition to load next?*  Baseline: round robin over partitions
   that still have walks.  Selective: the partition with the most walks, so
   the loaded bytes serve the most computation.
2. *Which cached graph partition to overwrite when the pool is full?*
   Baseline: FIFO.  Selective: the cached partition with the fewest walks
   (lowest reuse chance).
3. *Which batch to compute preemptively while loads are in flight?*
   Prefer a full batch whose graph partition is cached and whose partition
   holds the fewest walks (finish it off before its graph gets evicted);
   otherwise the computable batch with the most walks (amortize launch
   cost).
4. *Which batch to evict when the walk pool overflows?*  Same preference
   order as (3), applied to partitions whose graph is *not* cached first.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.memory import BlockPool
from repro.walks.pool import DeviceWalkPool, HostWalkPool


class Scheduler:
    """Stateful policy bundle for one engine run."""

    #: graph-pool eviction policies.
    EVICT_FIFO = "fifo"
    EVICT_LRU = "lru"
    EVICT_MIN_WALKS = "min_walks"

    def __init__(
        self,
        num_partitions: int,
        selective: bool,
        preemptive: bool,
        eviction_policy: Optional[str] = None,
        owned: Optional[np.ndarray] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.selective = selective
        self.preemptive = preemptive
        # Device shard view: a boolean mask restricting every decision to
        # the partitions this scheduler's device owns.  ``None`` (single
        # device) keeps the original global code paths untouched.
        self.owned: Optional[np.ndarray] = None
        self._owned_idx: Optional[np.ndarray] = None
        self.set_owned(owned)
        if eviction_policy is None:
            eviction_policy = (
                self.EVICT_MIN_WALKS if selective else self.EVICT_FIFO
            )
        if eviction_policy not in (
            self.EVICT_FIFO,
            self.EVICT_LRU,
            self.EVICT_MIN_WALKS,
        ):
            raise ValueError(f"unknown eviction policy {eviction_policy!r}")
        self.eviction_policy = eviction_policy
        self._cursor = -1

    def set_owned(self, owned: Optional[np.ndarray]) -> None:
        """Replace the owned-partition mask (elastic rebalance / failover).

        The mask is no longer fixed at construction: a rebalance or a
        peer failure reassigns partitions mid-run, and every surviving
        shard's scheduler must immediately decide over its new range.
        Round-robin cursor state is preserved (it is a partition index,
        valid under any mask).
        """
        if owned is not None:
            owned = np.asarray(owned, dtype=bool)
            if owned.shape != (self.num_partitions,):
                raise ValueError("owned mask must cover every partition")
            if not owned.any():
                raise ValueError("owned mask selects no partition")
        self.owned = owned
        self._owned_idx = (
            None if owned is None else np.nonzero(owned)[0].astype(np.int64)
        )

    # ------------------------------------------------------------------
    # (1) Partition selection
    # ------------------------------------------------------------------
    def select_partition(
        self, host: HostWalkPool, device: DeviceWalkPool
    ) -> Optional[int]:
        """Next partition to process, or ``None`` if no walks remain."""
        totals = host.counts + device.counts
        if self._owned_idx is not None:
            # Shard view: decide only over owned partitions.  Ties break
            # toward the lowest owned partition index (np.argmax picks the
            # first maximum), matching the global policy restricted.
            if self.selective:
                local = self._owned_idx[
                    int(np.argmax(totals[self._owned_idx]))
                ]
                return int(local) if totals[local] > 0 else None
            for step in range(1, self.num_partitions + 1):
                candidate = (self._cursor + step) % self.num_partitions
                if self.owned is not None and not self.owned[candidate]:
                    continue
                if totals[candidate] > 0:
                    self._cursor = candidate
                    return candidate
            return None
        if self.selective:
            best = int(np.argmax(totals))
            return best if totals[best] > 0 else None
        # Round robin over non-empty partitions.
        for step in range(1, self.num_partitions + 1):
            candidate = (self._cursor + step) % self.num_partitions
            if totals[candidate] > 0:
                self._cursor = candidate
                return candidate
        return None

    # ------------------------------------------------------------------
    # (2) Graph-pool eviction victim
    # ------------------------------------------------------------------
    def graph_victim(
        self,
        graph_pool: BlockPool,
        host: HostWalkPool,
        device: DeviceWalkPool,
        protect: Optional[int] = None,
    ) -> int:
        """Cached partition to overwrite; never the one being loaded."""
        cached = [k for k in graph_pool.keys() if k != protect]
        if self.owned is not None:
            # Guard: a shard's graph pool must not leak another shard's
            # partitions into this decision (totals of foreign partitions
            # are device-local zeros and would always win min-walks).
            cached = [k for k in cached if self.owned[k]]
        if not cached:
            raise KeyError("no evictable graph partition")
        if self.eviction_policy in (self.EVICT_FIFO, self.EVICT_LRU):
            # keys() is insertion order; with a recency-tracked pool the
            # first key is the least recently used.
            return cached[0]
        totals = host.counts + device.counts
        return min(cached, key=lambda k: (int(totals[k]), k))

    # ------------------------------------------------------------------
    # (3) Preemptive batch pick
    # ------------------------------------------------------------------
    def pick_preemptive_partition(
        self,
        graph_pool: BlockPool,
        host: HostWalkPool,
        device: DeviceWalkPool,
        exclude: Optional[int] = None,
    ) -> Optional[int]:
        """Partition whose cached batches should be computed preemptively.

        Ready = graph partition cached *and* computable device-cached walks.
        Per the paper's batch-pick policy, full batches are preferred (from
        the ready partition with the *fewest* total walks, to finish it off
        before its graph gets overwritten); otherwise the largest partial
        batch is dispatched, provided it is at least half full — dispatching
        near-empty frontiers would burn kernel launches for no progress.
        """
        keys = graph_pool.keys()
        if exclude is not None:
            keys = [k for k in keys if k != exclude]
        if self.owned is not None:
            keys = [k for k in keys if self.owned[k]]
        if not keys:
            return None
        keys_arr = np.asarray(keys, dtype=np.int64)
        dcounts = device.counts[keys_arr]
        capacity = device.batch_capacity
        full_mask = dcounts >= capacity
        if full_mask.any():
            candidates = keys_arr[full_mask]
            if not self.selective:
                return int(candidates[0])
            totals = host.counts[candidates] + device.counts[candidates]
            return int(candidates[int(np.argmin(totals))])
        partial_mask = dcounts * 2 >= capacity
        if partial_mask.any():
            candidates = keys_arr[partial_mask]
            if not self.selective:
                return int(candidates[0])
            return int(candidates[int(np.argmax(dcounts[partial_mask]))])
        return None

    # ------------------------------------------------------------------
    # (4) Walk-batch eviction
    # ------------------------------------------------------------------
    def walk_evict_partition(
        self,
        graph_pool: BlockPool,
        device: DeviceWalkPool,
        protect: Optional[int] = None,
    ) -> int:
        """Partition from which to evict one walk batch to the host."""
        candidates = [
            int(p) for p in device.partitions_with_walks() if p != protect
        ]
        if self.owned is not None:
            # Guard: never evict (and thereby re-route through the local
            # host pool) a batch belonging to another shard's partition.
            candidates = [p for p in candidates if self.owned[p]]
        if not candidates:
            if protect is not None and device.has_walks(protect):
                return protect
            raise KeyError("walk pool has nothing to evict")
        if not self.selective:
            return candidates[0]
        uncached = [p for p in candidates if p not in graph_pool]
        pool = uncached if uncached else candidates
        # Fewest cached walks first: those batches have the lowest chance of
        # being computed before their graph partition cycles out.
        return min(pool, key=lambda p: (int(device.counts[p]), p))
