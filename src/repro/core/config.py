"""Engine configuration.

Defaults follow the paper's default setting scaled to the synthetic
datasets: range partitions of a fixed byte budget, walk batches sized
``16x`` the GPU core count (§III-B; benchmark configs use smaller batches
to keep batch:partition proportions at the reduced graph scale), and all
three scheduling optimizations enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple, Union

from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.kernels import DIRECT_WRITE, TWO_LEVEL
from repro.gpu.pcie import PCIeSpec

#: copy_mode values (§III-E): adaptive picks per-iteration via alpha*w < S_p.
COPY_ADAPTIVE = "adaptive"
COPY_EXPLICIT = "explicit"
COPY_ZERO = "zero_copy"

#: partition-selection / eviction policy values.
SCHED_SELECTIVE = "selective"
SCHED_ROUND_ROBIN = "round_robin"


@dataclass(frozen=True)
class DeviceFailure:
    """One injected device failure: ``device`` dies at ``at_iteration``.

    The failure fires at the sweep boundary before the engine would run
    global iteration ``at_iteration`` — the shard's pending walks are
    recovered onto surviving devices before any further kernel runs.
    """

    device: int
    at_iteration: int

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError("device must be >= 0")
        if self.at_iteration < 1:
            raise ValueError("at_iteration must be >= 1")


@dataclass(frozen=True)
class FailureSchedule:
    """Deterministic mid-run device-failure injection plan.

    Carried by :attr:`EngineConfig.failure_schedule`; the multi-device
    engine fires each :class:`DeviceFailure` once, in iteration order.
    Failing every device is rejected at run time (the last survivor
    must be able to absorb the recovered walks).
    """

    failures: Tuple[DeviceFailure, ...]

    def __post_init__(self) -> None:
        seen = set()
        for failure in self.failures:
            if not isinstance(failure, DeviceFailure):
                raise TypeError("failures must hold DeviceFailure entries")
            if failure.device in seen:
                raise ValueError(
                    f"device {failure.device} scheduled to fail twice"
                )
            seen.add(failure.device)

    @classmethod
    def single(cls, device: int, at_iteration: int) -> "FailureSchedule":
        """One device failing once (the common bench/test case)."""
        return cls(failures=(DeviceFailure(device, at_iteration),))

    @classmethod
    def parse(cls, text: str) -> "FailureSchedule":
        """Parse ``DEV@ITER[,DEV@ITER...]``, e.g. ``1@40`` or ``1@40,2@90``."""
        failures = []
        for item in text.split(","):
            dev_text, sep, iter_text = item.partition("@")
            if not sep:
                raise ValueError(
                    f"bad failure {item!r}; expected DEVICE@ITERATION"
                )
            failures.append(
                DeviceFailure(device=int(dev_text), at_iteration=int(iter_text))
            )
        return cls(failures=tuple(failures))


@dataclass(frozen=True)
class EngineConfig:
    """All knobs of :class:`~repro.core.engine.LightTrafficEngine`.

    Attributes
    ----------
    partition_bytes:
        target CSR bytes per graph partition (block size of the graph pool).
    batch_walks:
        walks per batch; ``None`` = ``16 * device.total_cores`` (paper
        default).
    graph_pool_partitions:
        ``m_g`` — graph partitions cached in GPU memory.
    walk_pool_walks:
        ``m_w`` — walks cached in GPU memory; ``None`` = unbounded (all
        walks fit, no walk eviction).
    pipeline:
        overlap loading and computing on separate streams; ``False``
        serializes every operation (ablation lower bound).
    preemptive:
        compute ready batches while the load stream is busy (§III-D).
    selective:
        selective partition load/evict and batch-pick policies (§III-D);
        ``False`` = round-robin loading + FIFO eviction (paper's baseline).
    copy_mode:
        ``adaptive`` | ``explicit`` | ``zero_copy`` (§III-E / Fig 14).
    reshuffle_mode:
        ``two_level`` | ``direct`` (§III-C / Fig 12).
    interconnect:
        ``pcie3`` | ``pcie4`` | ``nvlink2``, or a custom
        :class:`~repro.gpu.pcie.PCIeSpec` (benchmarks pass scaled specs).
    device:
        modeled GPU.
    calibration:
        cost-model constants.
    rng_mode:
        ``sequential`` (one shared RNG stream; trajectories depend on
        dispatch order) or ``counter`` (Philox-style per-walk randomness
        derived from ``(seed, walk_id, step)``: trajectories are bitwise
        identical under every scheduling/copy-mode combination).
    sanitize:
        attach a :class:`~repro.analysis.Sanitizer` to the run: timeline
        causality, stream affinity, partition residency, walk-batch
        lifecycle and walk conservation are checked live, with the
        findings in ``RunStats.sanitizer``.  Pure observation — the
        simulated results stay bit-identical.
    seed:
        RNG seed for walk trajectories.
    max_iterations:
        safety cap; ``None`` = unlimited.
    record_ops:
        keep per-op timeline records (tests / debugging; costs memory).
    """

    partition_bytes: int = 256 * 1024
    batch_walks: Optional[int] = None
    graph_pool_partitions: int = 8
    walk_pool_walks: Optional[int] = None
    pipeline: bool = True
    preemptive: bool = True
    selective: bool = True
    copy_mode: str = COPY_ADAPTIVE
    reshuffle_mode: str = TWO_LEVEL
    #: ship sampled path fragments to a consumer GPU as walks advance
    #: (the paper's §IV-A assumption for uniform sampling; off = paths
    #: are not stored, exactly as the paper measures).
    ship_paths: bool = False
    #: link carrying shipped paths (device-to-device NVLink by default).
    ship_interconnect: Union[str, PCIeSpec] = "nvlink2"
    #: graph-pool eviction: None = paper default (min_walks when selective,
    #: FIFO otherwise); or one of 'fifo' | 'lru' | 'min_walks'.
    eviction_policy: Optional[str] = None
    interconnect: Union[str, PCIeSpec] = "pcie3"
    device: DeviceSpec = RTX3090
    calibration: Calibration = DEFAULT_CALIBRATION
    #: transition-sampler override applied to the algorithm (a name from
    #: the :mod:`repro.algorithms.transitions` registry); ``None`` keeps
    #: the algorithm's own choice.  Only algorithms with configurable
    #: sampling (e.g. weighted uniform walks) accept an override.
    sampler: Optional[str] = None
    #: device shards the run executes on.  1 = the paper's single-GPU
    #: engine; > 1 shards the partition range across N simulated devices
    #: with P2P walk migration (:mod:`repro.core.cluster`).
    devices: int = 1
    #: peer interconnect carrying cross-shard walk migrations — a name
    #: from :func:`repro.gpu.cluster.peer_link_by_name` or a custom
    #: :class:`~repro.gpu.cluster.PeerLinkSpec`.
    peer_interconnect: Union[str, "object"] = "nvlink"
    #: per-device capability specs (one
    #: :class:`~repro.gpu.cluster.ClusterDeviceSpec` per shard); ``None``
    #: = homogeneous (the historical uniform cluster, bit-identical).
    device_specs: Optional[Tuple[Any, ...]] = None
    #: interconnect topology routing cross-shard migrations — one of
    #: ``all-pairs`` | ``ring`` | ``switch`` (multi-hop routes relay
    #: through intermediate devices / an explicit switch node).
    topology: str = "all-pairs"
    #: deterministic mid-run device-failure injection; ``None`` = the
    #: historical reliable cluster.
    failure_schedule: Optional[FailureSchedule] = None
    #: elastic rebalance trigger: when the most loaded alive device's
    #: compute-normalized pending walks exceed ``threshold x`` the alive
    #: mean, partitions are handed off to rebalance.  ``None`` disables
    #: elasticity (static assignment, the historical behavior).
    rebalance_threshold: Optional[float] = None
    #: minimum sweeps between two elastic rebalances.
    rebalance_cooldown: int = 8
    #: weight the initial (and recovery) partition assignment by each
    #: device's compute scale; ``False`` keeps the uniform byte-balanced
    #: assignment even on skewed specs (the "homogeneous assumption"
    #: baseline the elastic bench compares against).
    heterogeneous_assignment: bool = True
    rng_mode: str = "sequential"
    sanitize: bool = False
    seed: Optional[int] = 42
    max_iterations: Optional[int] = None
    record_ops: bool = False
    #: execution backend running the kernel inner loops: ``simulated``
    #: (vectorized NumPy, the default and the only one usable with
    #: ``rng_mode="sequential"``), ``numba`` or ``multiprocess`` (real
    #: substrates; require the counter RNG so trajectories stay
    #: bit-identical to the simulated path).
    backend: str = "simulated"

    def __post_init__(self) -> None:
        if self.partition_bytes <= 0:
            raise ValueError("partition_bytes must be positive")
        if self.batch_walks is not None and self.batch_walks < 1:
            raise ValueError("batch_walks must be >= 1")
        if self.graph_pool_partitions < 1:
            raise ValueError("graph_pool_partitions must be >= 1")
        if self.copy_mode not in (COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO):
            raise ValueError(f"unknown copy_mode {self.copy_mode!r}")
        if self.reshuffle_mode not in (TWO_LEVEL, DIRECT_WRITE):
            raise ValueError(f"unknown reshuffle_mode {self.reshuffle_mode!r}")
        if self.rng_mode not in ("sequential", "counter"):
            raise ValueError(f"unknown rng_mode {self.rng_mode!r}")
        if self.sampler is not None:
            # Deferred import: the registry pulls in the sampler
            # implementations, which config itself must not depend on.
            from repro.algorithms.transitions import available_samplers

            if self.sampler not in available_samplers():
                raise ValueError(
                    f"unknown sampler {self.sampler!r}; available: "
                    f"{', '.join(available_samplers())}"
                )
        if self.eviction_policy not in (None, "fifo", "lru", "min_walks"):
            raise ValueError(
                f"unknown eviction_policy {self.eviction_policy!r}"
            )
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if isinstance(self.peer_interconnect, str):
            from repro.gpu.cluster import available_peer_links

            if self.peer_interconnect not in available_peer_links():
                raise ValueError(
                    f"unknown peer_interconnect {self.peer_interconnect!r}; "
                    f"available: {', '.join(available_peer_links())}"
                )
        # Deferred import: gpu.cluster must not be a hard dependency of
        # config construction (mirrors the peer-link check above).
        from repro.gpu.cluster import TOPOLOGIES, ClusterDeviceSpec

        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; available: "
                f"{', '.join(sorted(TOPOLOGIES))}"
            )
        if self.device_specs is not None:
            if len(self.device_specs) != self.devices:
                raise ValueError(
                    f"got {len(self.device_specs)} device spec(s) for "
                    f"{self.devices} devices"
                )
            for spec in self.device_specs:
                if not isinstance(spec, ClusterDeviceSpec):
                    raise TypeError(
                        "device_specs must hold ClusterDeviceSpec entries"
                    )
        if self.failure_schedule is not None:
            if not isinstance(self.failure_schedule, FailureSchedule):
                raise TypeError("failure_schedule must be a FailureSchedule")
            for failure in self.failure_schedule.failures:
                if failure.device >= self.devices:
                    raise ValueError(
                        f"failure_schedule names device {failure.device}, "
                        f"but the cluster has {self.devices} device(s)"
                    )
            if len(self.failure_schedule.failures) >= self.devices:
                raise ValueError(
                    "failure_schedule would kill every device; at least "
                    "one must survive to recover walks"
                )
        if self.rebalance_threshold is not None:
            if not self.rebalance_threshold > 1.0:
                raise ValueError("rebalance_threshold must be > 1.0")
        if self.rebalance_cooldown < 1:
            raise ValueError("rebalance_cooldown must be >= 1")
        if self.backend != "simulated":
            # Deferred import: the backend registry depends on config.
            from repro.backends import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; available: "
                    f"{', '.join(available_backends())}"
                )
            if self.rng_mode != "counter":
                raise ValueError(
                    f"backend {self.backend!r} requires rng_mode='counter' "
                    "(real backends re-order execution, which only the "
                    "schedule-independent counter RNG can replay)"
                )

    def resolved_batch_walks(self) -> int:
        """Batch capacity: configured, or the paper's 16x core count."""
        if self.batch_walks is not None:
            return self.batch_walks
        return 16 * self.device.total_cores

    def with_options(self, **changes: Any) -> "EngineConfig":
        """Functional update (convenience for benchmark sweeps)."""
        return replace(self, **changes)
