"""Run statistics and time accounting.

:class:`RunStats` is the structured result every engine/baseline run
returns; the benchmark harness turns these into the paper's tables and
figure series.  Times are *simulated* seconds on the modeled hardware.

Engines never mutate a :class:`RunStats` inline: they emit typed events on
an :class:`~repro.core.events.EventBus` and a :class:`StatsCollector`
subscription populates the counters, so the same observation layer covers
the LightTraffic engine and every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from repro.core.events import (
        BatchEvicted,
        BatchLoaded,
        DeviceFailed,
        DeviceRecoveredWalks,
        GraphServed,
        IterationStarted,
        KernelDispatched,
        QueryAdmitted,
        QueryCompleted,
        RunCompleted,
        ShardRebalanced,
        WalksMigrated,
    )
    from repro.core.metrics import MetricsCollector

#: breakdown categories used across engines (Fig 15 / Fig 17 / Table I).
CAT_GRAPH_LOAD = "graph_load"
CAT_WALK_LOAD = "walk_load"
CAT_ZERO_COPY = "zero_copy"
CAT_WALK_EVICT = "walk_evict"
CAT_WALK_UPDATE = "walk_update"
CAT_RESHUFFLE = "walk_reshuffle"
CAT_WALK_MIGRATE = "walk_migrate"
CAT_KERNEL_OTHER = "kernel_other"
CAT_PATH_SHIP = "path_ship"
CAT_SUBGRAPH = "subgraph_creation"
CAT_CPU_COMPUTE = "cpu_compute"


@dataclass
class RunStats:
    """Outcome of one end-to-end random walk run."""

    system: str
    algorithm: str
    graph: str
    num_walks: int
    total_steps: int = 0
    iterations: int = 0
    explicit_copies: int = 0
    zero_copy_iterations: int = 0
    graph_pool_hits: int = 0
    graph_pool_misses: int = 0
    walk_batches_loaded: int = 0
    walk_batches_evicted: int = 0
    #: walks whose bounded rejection sampler saturated and accepted an
    #: unvetted candidate (biased-walk quality signal; 0 = clean run).
    sampler_fallbacks: int = 0
    num_partitions: int = 0
    #: device shards the run executed on (1 = the classic single-GPU path).
    num_devices: int = 1
    #: walks that crossed a shard boundary over a peer channel.
    walks_migrated: int = 0
    #: devices that failed mid-run (injected via ``FailureSchedule``).
    device_failures: int = 0
    #: pending walks recovered onto survivors after device failures.
    walks_recovered: int = 0
    #: elastic rebalance operations triggered by the cluster controller.
    rebalances: int = 0
    #: pending walks handed off between shards during rebalances.
    walks_rebalanced: int = 0
    #: serve-session queries admitted by the front-end (0 = batch run).
    queries_admitted: int = 0
    #: serve-session queries whose walks were routed back to the client.
    queries_completed: int = 0
    total_time: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: per-device simulated makespans (stream max per shard), populated by
    #: the multi-device engine; ``None`` on single-device runs.
    device_times: Optional[Dict[str, float]] = None
    #: per-partition observation histograms, populated when a
    #: :class:`~repro.core.metrics.MetricsCollector` rides the run's bus.
    metrics: Optional[Dict[str, object]] = None
    #: sanitizer findings (:meth:`repro.analysis.Sanitizer.summary`),
    #: populated when the run is sanitized (``EngineConfig.sanitize`` /
    #: ``repro run --sanitize``); ``None`` = sanitizer not attached.
    sanitizer: Optional[Dict[str, object]] = None
    #: execution backend that ran the kernel inner loops.
    backend: str = "simulated"
    #: measured (real wall-clock) backend timings
    #: (:meth:`repro.backends.MeasuredTimings.as_dict`) — the counterpart
    #: of the *simulated* ``breakdown``; ``None`` on baseline runs that
    #: bypass the backend layer.
    measured: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Processed steps per (simulated) second — the paper's metric."""
        if self.total_time <= 0:
            return 0.0
        return self.total_steps / self.total_time

    @property
    def graph_pool_hit_rate(self) -> float:
        """Graph-pool cache hit rate (Table III)."""
        probes = self.graph_pool_hits + self.graph_pool_misses
        return self.graph_pool_hits / probes if probes else 0.0

    def time(self, category: str) -> float:
        """Accumulated simulated time of one breakdown category."""
        return self.breakdown.get(category, 0.0)

    @property
    def compute_time(self) -> float:
        """Kernel-side time (update + reshuffle + launch overheads)."""
        return (
            self.time(CAT_WALK_UPDATE)
            + self.time(CAT_RESHUFFLE)
            + self.time(CAT_KERNEL_OTHER)
            + self.time(CAT_CPU_COMPUTE)
        )

    @property
    def transmission_time(self) -> float:
        """All CPU-GPU traffic time (loads + zero copy + evictions)."""
        return (
            self.time(CAT_GRAPH_LOAD)
            + self.time(CAT_WALK_LOAD)
            + self.time(CAT_ZERO_COPY)
            + self.time(CAT_WALK_EVICT)
            + self.time(CAT_WALK_MIGRATE)
            + self.time(CAT_PATH_SHIP)
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.system}/{self.algorithm} on {self.graph}: "
            f"{self.num_walks} walks, {self.total_steps} steps, "
            f"{self.iterations} iters, {self.total_time * 1e3:.2f} ms sim, "
            f"{self.throughput / 1e6:.1f} Msteps/s"
        )


class StatsCollector:
    """Populates a :class:`RunStats` purely from event-bus subscriptions.

    Attach to an :class:`~repro.core.events.EventBus` with ``bus.attach``.
    Every counter *accumulates*, so one collector attached across several
    runs on a shared bus (e.g. the multi-round baseline's rounds) yields
    the aggregate statistics of all of them.
    """

    def __init__(
        self, stats: RunStats, metrics: "Optional[MetricsCollector]" = None
    ) -> None:
        from repro.core.events import SERVED_EXPLICIT, SERVED_ZERO_COPY

        self.stats = stats
        self.metrics = metrics
        self._explicit = SERVED_EXPLICIT
        self._zero_copy = SERVED_ZERO_COPY

    # -- event handlers (bound by EventBus.attach) ----------------------
    def on_iteration_started(self, event: "IterationStarted") -> None:
        self.stats.iterations += 1

    def on_graph_served(self, event: "GraphServed") -> None:
        if event.mode == self._explicit:
            self.stats.explicit_copies += 1
        elif event.mode == self._zero_copy:
            self.stats.zero_copy_iterations += 1

    def on_batch_loaded(self, event: "BatchLoaded") -> None:
        self.stats.walk_batches_loaded += 1

    def on_batch_evicted(self, event: "BatchEvicted") -> None:
        self.stats.walk_batches_evicted += 1

    def on_kernel_dispatched(self, event: "KernelDispatched") -> None:
        self.stats.total_steps += event.steps
        self.stats.sampler_fallbacks += getattr(event, "sampler_fallbacks", 0)

    def on_walks_migrated(self, event: "WalksMigrated") -> None:
        self.stats.walks_migrated += event.walks

    # Pure counter observer: walk conservation across the failure is
    # asserted by the engine's recovery path and audited by the
    # sanitizer, not by the stats layer.
    def on_device_failed(  # lint: allow-device-failure-conservation
        self, event: "DeviceFailed"
    ) -> None:
        self.stats.device_failures += 1

    def on_device_recovered_walks(
        self, event: "DeviceRecoveredWalks"
    ) -> None:
        self.stats.walks_recovered += event.walks

    def on_query_admitted(self, event: "QueryAdmitted") -> None:
        self.stats.queries_admitted += 1

    def on_query_completed(self, event: "QueryCompleted") -> None:
        self.stats.queries_completed += 1

    def on_shard_rebalanced(self, event: "ShardRebalanced") -> None:
        self.stats.rebalances += 1
        self.stats.walks_rebalanced += event.walks_moved

    def on_run_completed(self, event: "RunCompleted") -> None:
        stats = self.stats
        stats.total_time += event.total_time
        stats.graph_pool_hits += event.graph_pool_hits
        stats.graph_pool_misses += event.graph_pool_misses
        for category, seconds in event.breakdown.items():
            stats.breakdown[category] = (
                stats.breakdown.get(category, 0.0) + seconds
            )
        if self.metrics is not None:
            stats.metrics = self.metrics.snapshot()
