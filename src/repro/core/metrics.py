"""Per-partition metrics histograms collected from the event bus.

A :class:`MetricsCollector` attached to any engine's
:class:`~repro.core.events.EventBus` accumulates, per partition:

* how its graph data was served (hit / explicit / zero-copy counts),
* time spent loading (graph copies + walk batches), computing (kernels)
  and evicting walk batches,
* walks computed, walk steps executed, and walks finished,
* how many of its computed walks were preemptive dispatches.

The :meth:`snapshot` dict is what ``RunStats.metrics`` exposes and what
``repro run --metrics-json`` serializes, giving every system — the
LightTraffic engine and the baselines alike — one uniform observation
format.  :func:`prometheus_text` renders the same snapshot in the
Prometheus text exposition format (``repro run --metrics-prom``),
including the per-device pending-walk *time series* (one sample per
iteration, iteration index as the sample timestamp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.events import (
    SERVED_MODES,
    BatchEvicted,
    BatchLoaded,
    DeviceFailed,
    DeviceRecoveredWalks,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    QueryAdmitted,
    QueryCompleted,
    Reshuffled,
    RunCompleted,
    ShardRebalanced,
    WalkFinished,
    WalksDelivered,
    WalksMigrated,
)


@dataclass
class PartitionMetrics:
    """Accumulated observations for one graph partition."""

    serve_modes: Dict[str, int] = field(
        default_factory=lambda: {mode: 0 for mode in SERVED_MODES}
    )
    load_seconds: float = 0.0
    compute_seconds: float = 0.0
    evict_seconds: float = 0.0
    batches_loaded: int = 0
    batches_evicted: int = 0
    walks_computed: int = 0
    walks_preempted: int = 0
    steps: int = 0
    walks_finished: int = 0
    sampler_fallbacks: int = 0

    def as_dict(self) -> dict:
        return {
            "serve_modes": dict(self.serve_modes),
            "load_seconds": self.load_seconds,
            "compute_seconds": self.compute_seconds,
            "evict_seconds": self.evict_seconds,
            "batches_loaded": self.batches_loaded,
            "batches_evicted": self.batches_evicted,
            "walks_computed": self.walks_computed,
            "walks_preempted": self.walks_preempted,
            "steps": self.steps,
            "walks_finished": self.walks_finished,
            "sampler_fallbacks": self.sampler_fallbacks,
        }


@dataclass
class DeviceMetrics:
    """Accumulated observations for one device shard.

    ``pending_samples`` is the shard's pending-walk time series — one
    ``(iteration, pending_walks)`` point per iteration the shard ran,
    the raw signal behind the elastic controller's skew detection and
    the per-device series :func:`prometheus_text` exports.
    """

    iterations: int = 0
    walks_computed: int = 0
    steps: int = 0
    walks_migrated_out: int = 0
    walks_migrated_in: int = 0
    migrate_seconds: float = 0.0
    #: walks this shard absorbed from a failed peer.
    walks_recovered: int = 0
    #: global iteration at which this shard failed; ``None`` = alive.
    failed_at_iteration: Optional[int] = None
    pending_samples: List[Tuple[int, int]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "walks_computed": self.walks_computed,
            "steps": self.steps,
            "walks_migrated_out": self.walks_migrated_out,
            "walks_migrated_in": self.walks_migrated_in,
            "migrate_seconds": self.migrate_seconds,
            "walks_recovered": self.walks_recovered,
            "failed_at_iteration": self.failed_at_iteration,
            "pending_samples": [
                [iteration, pending]
                for iteration, pending in self.pending_samples
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DeviceMetrics":
        """Inverse of :meth:`as_dict` (JSON round-trip safe)."""
        failed_at = data.get("failed_at_iteration")
        return cls(
            iterations=int(data.get("iterations", 0)),  # type: ignore[arg-type]
            walks_computed=int(data.get("walks_computed", 0)),  # type: ignore[arg-type]
            steps=int(data.get("steps", 0)),  # type: ignore[arg-type]
            walks_migrated_out=int(data.get("walks_migrated_out", 0)),  # type: ignore[arg-type]
            walks_migrated_in=int(data.get("walks_migrated_in", 0)),  # type: ignore[arg-type]
            migrate_seconds=float(data.get("migrate_seconds", 0.0)),  # type: ignore[arg-type]
            walks_recovered=int(data.get("walks_recovered", 0)),  # type: ignore[arg-type]
            failed_at_iteration=(
                None if failed_at is None else int(failed_at)  # type: ignore[arg-type]
            ),
            pending_samples=[
                (int(sample[0]), int(sample[1]))  # type: ignore[index]
                for sample in data.get("pending_samples", [])  # type: ignore[union-attr]
            ],
        )


class MetricsCollector:
    """Event-bus subscriber building per-partition/per-device histograms."""

    def __init__(self) -> None:
        self.partitions: Dict[int, PartitionMetrics] = {}
        self.devices: Dict[int, DeviceMetrics] = {}
        self.iterations = 0
        self.runs_completed = 0
        self.rebalances = 0
        self.total_time = 0.0
        self.queries_admitted = 0
        self.queries_completed = 0
        self.queries_by_kind: Dict[str, int] = {}
        self.query_walks_served = 0
        self.query_queue_seconds = 0.0
        self.query_service_seconds = 0.0
        self.query_total_seconds = 0.0

    def _partition(self, index: int) -> PartitionMetrics:
        metrics = self.partitions.get(index)
        if metrics is None:
            metrics = self.partitions[index] = PartitionMetrics()
        return metrics

    def _device(self, index: int) -> DeviceMetrics:
        metrics = self.devices.get(index)
        if metrics is None:
            metrics = self.devices[index] = DeviceMetrics()
        return metrics

    # -- event handlers (bound by EventBus.attach) ----------------------
    def on_iteration_started(self, event: IterationStarted) -> None:
        self.iterations += 1
        device = self._device(getattr(event, "device", 0))
        device.iterations += 1
        device.pending_samples.append((event.iteration, event.pending_walks))

    def on_graph_served(self, event: GraphServed) -> None:
        metrics = self._partition(event.partition)
        metrics.serve_modes[event.mode] = (
            metrics.serve_modes.get(event.mode, 0) + 1
        )
        metrics.load_seconds += event.copy_seconds

    def on_batch_loaded(self, event: BatchLoaded) -> None:
        metrics = self._partition(event.partition)
        metrics.batches_loaded += 1
        metrics.load_seconds += event.seconds

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        metrics = self._partition(event.partition)
        metrics.walks_computed += event.walks
        metrics.steps += event.steps
        metrics.compute_seconds += event.seconds
        metrics.sampler_fallbacks += getattr(event, "sampler_fallbacks", 0)
        if event.preemptive:
            metrics.walks_preempted += event.walks
        device = self._device(getattr(event, "device", 0))
        device.walks_computed += event.walks
        device.steps += event.steps

    def on_walks_migrated(self, event: WalksMigrated) -> None:
        device = self._device(event.src_device)
        device.walks_migrated_out += event.walks
        device.migrate_seconds += event.seconds

    def on_walks_delivered(self, event: WalksDelivered) -> None:
        self._device(event.dst_device).walks_migrated_in += event.walks

    # Pure histogram observer: conservation across the failure is
    # asserted by the engine's recovery path and audited by the
    # sanitizer, not by the metrics layer.
    def on_device_failed(  # lint: allow-device-failure-conservation
        self, event: DeviceFailed
    ) -> None:
        self._device(event.device).failed_at_iteration = event.iteration

    def on_device_recovered_walks(self, event: DeviceRecoveredWalks) -> None:
        self._device(event.dst_device).walks_recovered += event.walks

    def on_shard_rebalanced(self, event: ShardRebalanced) -> None:
        self.rebalances += 1

    def on_query_admitted(self, event: QueryAdmitted) -> None:
        self.queries_admitted += 1
        self.queries_by_kind[event.kind] = (
            self.queries_by_kind.get(event.kind, 0) + 1
        )

    def on_query_completed(self, event: QueryCompleted) -> None:
        self.queries_completed += 1
        self.query_walks_served += event.walks
        self.query_queue_seconds += event.queue_seconds
        self.query_service_seconds += event.service_seconds
        self.query_total_seconds += event.total_seconds

    def on_reshuffled(self, event: Reshuffled) -> None:
        self._partition(event.partition).compute_seconds += event.seconds

    def on_batch_evicted(self, event: BatchEvicted) -> None:
        metrics = self._partition(event.partition)
        metrics.batches_evicted += 1
        metrics.evict_seconds += event.seconds

    def on_walk_finished(self, event: WalkFinished) -> None:
        self._partition(event.partition).walks_finished += event.count

    def on_run_completed(self, event: RunCompleted) -> None:
        self.runs_completed += 1
        self.total_time += event.total_time

    # ------------------------------------------------------------------
    @property
    def preemption_fraction(self) -> float:
        """Fraction of computed walks dispatched preemptively."""
        total = sum(p.walks_computed for p in self.partitions.values())
        if total == 0:
            return 0.0
        preempted = sum(
            p.walks_preempted for p in self.partitions.values()
        )
        return preempted / total

    def serve_mode_totals(self) -> Dict[str, int]:
        totals = {mode: 0 for mode in SERVED_MODES}
        for metrics in self.partitions.values():
            for mode, count in metrics.serve_modes.items():
                totals[mode] = totals.get(mode, 0) + count
        return totals

    def snapshot(self) -> dict:
        """JSON-serializable view (``RunStats.metrics`` / --metrics-json)."""
        return {
            "iterations": self.iterations,
            "runs_completed": self.runs_completed,
            "rebalances": self.rebalances,
            "total_time": self.total_time,
            "preemption_fraction": self.preemption_fraction,
            "serve_mode_totals": self.serve_mode_totals(),
            "queries": {
                "admitted": self.queries_admitted,
                "completed": self.queries_completed,
                "by_kind": dict(sorted(self.queries_by_kind.items())),
                "walks_served": self.query_walks_served,
                "queue_seconds": self.query_queue_seconds,
                "service_seconds": self.query_service_seconds,
                "total_seconds": self.query_total_seconds,
            },
            "partitions": {
                str(index): metrics.as_dict()
                for index, metrics in sorted(self.partitions.items())
            },
            "devices": {
                str(index): metrics.as_dict()
                for index, metrics in sorted(self.devices.items())
            },
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(pairs.items())
    )
    return "{" + body + "}"


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))  # type: ignore[arg-type]


class _PromWriter:
    """Accumulates one metric family (HELP/TYPE header + sample lines)."""

    def __init__(self, namespace: str, extra: Mapping[str, str]) -> None:
        self.namespace = namespace
        self.extra = dict(extra)
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(
        self,
        full_name: str,
        value: object,
        labels: Optional[Mapping[str, str]] = None,
        timestamp: Optional[int] = None,
    ) -> None:
        merged = dict(self.extra)
        if labels:
            merged.update(labels)
        line = f"{full_name}{_labels(merged)} {_fmt(value)}"
        if timestamp is not None:
            line = f"{line} {timestamp}"
        self.lines.append(line)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(
    snapshot: Mapping[str, object],
    namespace: str = "repro",
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a :meth:`MetricsCollector.snapshot` as Prometheus text.

    Cumulative counts become ``_total`` counters; instantaneous values
    become gauges.  The per-device pending-walk series is exported with
    one sample line per iteration, using the iteration index as the
    sample timestamp (monotonically increasing per series, as the
    exposition format requires).  ``extra_labels`` (e.g. ``run``/
    ``graph`` identifiers) are merged into every sample, values escaped.
    """
    writer = _PromWriter(namespace, extra_labels or {})

    name = writer.family(
        "iterations_total", "counter", "Engine iterations executed."
    )
    writer.sample(name, int(snapshot.get("iterations", 0)))  # type: ignore[arg-type]
    name = writer.family(
        "runs_completed_total", "counter", "Engine runs completed."
    )
    writer.sample(name, int(snapshot.get("runs_completed", 0)))  # type: ignore[arg-type]
    name = writer.family(
        "rebalances_total", "counter", "Elastic shard rebalance operations."
    )
    writer.sample(name, int(snapshot.get("rebalances", 0)))  # type: ignore[arg-type]
    name = writer.family(
        "total_time_seconds", "gauge", "Simulated end-to-end makespan."
    )
    writer.sample(name, float(snapshot.get("total_time", 0.0)))  # type: ignore[arg-type]
    name = writer.family(
        "preemption_fraction",
        "gauge",
        "Fraction of computed walks dispatched preemptively.",
    )
    writer.sample(name, float(snapshot.get("preemption_fraction", 0.0)))  # type: ignore[arg-type]

    serve_modes = snapshot.get("serve_mode_totals") or {}
    name = writer.family(
        "serve_mode_total", "counter", "Graph serves by mode."
    )
    for mode, count in sorted(serve_modes.items()):  # type: ignore[union-attr]
        writer.sample(name, int(count), {"mode": str(mode)})

    queries = snapshot.get("queries") or {}
    if queries:
        name = writer.family(
            "queries_admitted_total", "counter", "Serve queries admitted."
        )
        writer.sample(name, int(queries.get("admitted", 0)))  # type: ignore[union-attr]
        name = writer.family(
            "queries_completed_total", "counter", "Serve queries completed."
        )
        writer.sample(name, int(queries.get("completed", 0)))  # type: ignore[union-attr]
        name = writer.family(
            "queries_by_kind_total", "counter", "Serve queries by kind."
        )
        by_kind = queries.get("by_kind") or {}  # type: ignore[union-attr]
        for kind, count in sorted(by_kind.items()):  # type: ignore[union-attr]
            writer.sample(name, int(count), {"kind": str(kind)})
        name = writer.family(
            "query_walks_served_total",
            "counter",
            "Walks routed back to completed queries.",
        )
        writer.sample(name, int(queries.get("walks_served", 0)))  # type: ignore[union-attr]
        for key, metric, help_text in (
            (
                "queue_seconds",
                "query_queue_seconds_total",
                "Simulated queue time summed over completed queries.",
            ),
            (
                "service_seconds",
                "query_service_seconds_total",
                "Simulated service time summed over completed queries.",
            ),
            (
                "total_seconds",
                "query_total_seconds_total",
                "Simulated total latency summed over completed queries.",
            ),
        ):
            name = writer.family(metric, "counter", help_text)
            writer.sample(name, float(queries.get(key, 0.0)))  # type: ignore[union-attr]

    devices = snapshot.get("devices") or {}
    device_items = sorted(
        devices.items(), key=lambda kv: int(kv[0])  # type: ignore[union-attr]
    )
    device_counters = (
        ("iterations", "device_iterations_total", "Iterations run by shard."),
        (
            "walks_computed",
            "device_walks_computed_total",
            "Walks computed by shard.",
        ),
        ("steps", "device_steps_total", "Walk steps executed by shard."),
        (
            "walks_migrated_out",
            "device_walks_migrated_out_total",
            "Walks migrated out of the shard.",
        ),
        (
            "walks_migrated_in",
            "device_walks_migrated_in_total",
            "Walks migrated into the shard.",
        ),
        (
            "walks_recovered",
            "device_walks_recovered_total",
            "Walks absorbed from failed peers.",
        ),
    )
    for key, metric, help_text in device_counters:
        name = writer.family(metric, "counter", help_text)
        for device_id, data in device_items:
            writer.sample(
                name, int(data.get(key, 0)), {"device": str(device_id)}
            )
    name = writer.family(
        "device_migrate_seconds_total",
        "counter",
        "Migration send time accounted to the shard.",
    )
    for device_id, data in device_items:
        writer.sample(
            name,
            float(data.get("migrate_seconds", 0.0)),
            {"device": str(device_id)},
        )
    name = writer.family(
        "device_failed", "gauge", "Whether the shard failed mid-run."
    )
    for device_id, data in device_items:
        writer.sample(
            name,
            data.get("failed_at_iteration") is not None,
            {"device": str(device_id)},
        )
    name = writer.family(
        "device_pending_walks",
        "gauge",
        "Pending walks at each iteration (iteration index as timestamp).",
    )
    for device_id, data in device_items:
        for iteration, pending in data.get("pending_samples", []):
            writer.sample(
                name,
                int(pending),
                {"device": str(device_id)},
                timestamp=int(iteration),
            )
    return writer.text()
