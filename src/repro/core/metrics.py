"""Per-partition metrics histograms collected from the event bus.

A :class:`MetricsCollector` attached to any engine's
:class:`~repro.core.events.EventBus` accumulates, per partition:

* how its graph data was served (hit / explicit / zero-copy counts),
* time spent loading (graph copies + walk batches), computing (kernels)
  and evicting walk batches,
* walks computed, walk steps executed, and walks finished,
* how many of its computed walks were preemptive dispatches.

The :meth:`snapshot` dict is what ``RunStats.metrics`` exposes and what
``repro run --metrics-json`` serializes, giving every system — the
LightTraffic engine and the baselines alike — one uniform observation
format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.events import (
    SERVED_MODES,
    BatchEvicted,
    BatchLoaded,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    Reshuffled,
    RunCompleted,
    WalkFinished,
    WalksDelivered,
    WalksMigrated,
)


@dataclass
class PartitionMetrics:
    """Accumulated observations for one graph partition."""

    serve_modes: Dict[str, int] = field(
        default_factory=lambda: {mode: 0 for mode in SERVED_MODES}
    )
    load_seconds: float = 0.0
    compute_seconds: float = 0.0
    evict_seconds: float = 0.0
    batches_loaded: int = 0
    batches_evicted: int = 0
    walks_computed: int = 0
    walks_preempted: int = 0
    steps: int = 0
    walks_finished: int = 0
    sampler_fallbacks: int = 0

    def as_dict(self) -> dict:
        return {
            "serve_modes": dict(self.serve_modes),
            "load_seconds": self.load_seconds,
            "compute_seconds": self.compute_seconds,
            "evict_seconds": self.evict_seconds,
            "batches_loaded": self.batches_loaded,
            "batches_evicted": self.batches_evicted,
            "walks_computed": self.walks_computed,
            "walks_preempted": self.walks_preempted,
            "steps": self.steps,
            "walks_finished": self.walks_finished,
            "sampler_fallbacks": self.sampler_fallbacks,
        }


@dataclass
class DeviceMetrics:
    """Accumulated observations for one device shard."""

    iterations: int = 0
    walks_computed: int = 0
    steps: int = 0
    walks_migrated_out: int = 0
    walks_migrated_in: int = 0
    migrate_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "walks_computed": self.walks_computed,
            "steps": self.steps,
            "walks_migrated_out": self.walks_migrated_out,
            "walks_migrated_in": self.walks_migrated_in,
            "migrate_seconds": self.migrate_seconds,
        }


class MetricsCollector:
    """Event-bus subscriber building per-partition/per-device histograms."""

    def __init__(self) -> None:
        self.partitions: Dict[int, PartitionMetrics] = {}
        self.devices: Dict[int, DeviceMetrics] = {}
        self.iterations = 0
        self.runs_completed = 0
        self.total_time = 0.0

    def _partition(self, index: int) -> PartitionMetrics:
        metrics = self.partitions.get(index)
        if metrics is None:
            metrics = self.partitions[index] = PartitionMetrics()
        return metrics

    def _device(self, index: int) -> DeviceMetrics:
        metrics = self.devices.get(index)
        if metrics is None:
            metrics = self.devices[index] = DeviceMetrics()
        return metrics

    # -- event handlers (bound by EventBus.attach) ----------------------
    def on_iteration_started(self, event: IterationStarted) -> None:
        self.iterations += 1
        self._device(getattr(event, "device", 0)).iterations += 1

    def on_graph_served(self, event: GraphServed) -> None:
        metrics = self._partition(event.partition)
        metrics.serve_modes[event.mode] = (
            metrics.serve_modes.get(event.mode, 0) + 1
        )
        metrics.load_seconds += event.copy_seconds

    def on_batch_loaded(self, event: BatchLoaded) -> None:
        metrics = self._partition(event.partition)
        metrics.batches_loaded += 1
        metrics.load_seconds += event.seconds

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        metrics = self._partition(event.partition)
        metrics.walks_computed += event.walks
        metrics.steps += event.steps
        metrics.compute_seconds += event.seconds
        metrics.sampler_fallbacks += getattr(event, "sampler_fallbacks", 0)
        if event.preemptive:
            metrics.walks_preempted += event.walks
        device = self._device(getattr(event, "device", 0))
        device.walks_computed += event.walks
        device.steps += event.steps

    def on_walks_migrated(self, event: WalksMigrated) -> None:
        device = self._device(event.src_device)
        device.walks_migrated_out += event.walks
        device.migrate_seconds += event.seconds

    def on_walks_delivered(self, event: WalksDelivered) -> None:
        self._device(event.dst_device).walks_migrated_in += event.walks

    def on_reshuffled(self, event: Reshuffled) -> None:
        self._partition(event.partition).compute_seconds += event.seconds

    def on_batch_evicted(self, event: BatchEvicted) -> None:
        metrics = self._partition(event.partition)
        metrics.batches_evicted += 1
        metrics.evict_seconds += event.seconds

    def on_walk_finished(self, event: WalkFinished) -> None:
        self._partition(event.partition).walks_finished += event.count

    def on_run_completed(self, event: RunCompleted) -> None:
        self.runs_completed += 1
        self.total_time += event.total_time

    # ------------------------------------------------------------------
    @property
    def preemption_fraction(self) -> float:
        """Fraction of computed walks dispatched preemptively."""
        total = sum(p.walks_computed for p in self.partitions.values())
        if total == 0:
            return 0.0
        preempted = sum(
            p.walks_preempted for p in self.partitions.values()
        )
        return preempted / total

    def serve_mode_totals(self) -> Dict[str, int]:
        totals = {mode: 0 for mode in SERVED_MODES}
        for metrics in self.partitions.values():
            for mode, count in metrics.serve_modes.items():
                totals[mode] = totals.get(mode, 0) + count
        return totals

    def snapshot(self) -> dict:
        """JSON-serializable view (``RunStats.metrics`` / --metrics-json)."""
        return {
            "iterations": self.iterations,
            "runs_completed": self.runs_completed,
            "total_time": self.total_time,
            "preemption_fraction": self.preemption_fraction,
            "serve_mode_totals": self.serve_mode_totals(),
            "partitions": {
                str(index): metrics.as_dict()
                for index, metrics in sorted(self.partitions.items())
            },
            "devices": {
                str(index): metrics.as_dict()
                for index, metrics in sorted(self.devices.items())
            },
        }
