"""The LightTraffic engine (paper §III).

:class:`~repro.core.engine.LightTrafficEngine` runs a random walk algorithm
over a range-partitioned graph with fully out-of-GPU-memory management of
both graph data and walk index, reproducing Algorithm 2:

* partition-based iterations with a graph pool and a walk pool,
* a 3-phase pipeline over three simulated streams (graph loading, walk
  loading, computing) with eviction on a fourth full-duplex channel,
* preemptive scheduling (compute ready batches while loads are in flight),
* selective scheduling (load the partition with the most walks, evict the
  one with the fewest, pick batches to maximize cached-data reuse),
* adaptive scheduling (zero copy instead of explicit partition loads when
  ``alpha * w < S_p``).

Every behaviour is a config toggle so the ablation benchmarks (Fig 13,
Table III, Fig 14) can run the exact baselines the paper compares against.
"""

from repro.core.config import EngineConfig
from repro.core.stats import RunStats, StatsCollector
from repro.core.scheduler import Scheduler
from repro.core.adaptive import AdaptivePolicy
from repro.core.engine import LightTrafficEngine, run_walks
from repro.core.epochs import EpochResult, run_epochs
from repro.core.events import (
    BatchEvicted,
    BatchLoaded,
    EventBus,
    GraphServed,
    IterationStarted,
    KernelDispatched,
    Reshuffled,
    RunCompleted,
    WalkFinished,
)
from repro.core.metrics import MetricsCollector
from repro.core.trace import TraceRecorder, TraceSubscriber
from repro.core.prng import CounterRNG
from repro.core.theory import (
    IterationModel,
    transfer_bound_throughput,
    walk_density,
)

__all__ = [
    "EngineConfig",
    "RunStats",
    "StatsCollector",
    "Scheduler",
    "AdaptivePolicy",
    "LightTrafficEngine",
    "run_walks",
    "EpochResult",
    "run_epochs",
    "EventBus",
    "IterationStarted",
    "GraphServed",
    "BatchLoaded",
    "KernelDispatched",
    "Reshuffled",
    "BatchEvicted",
    "WalkFinished",
    "RunCompleted",
    "MetricsCollector",
    "TraceRecorder",
    "TraceSubscriber",
    "CounterRNG",
    "IterationModel",
    "transfer_bound_throughput",
    "walk_density",
]
