"""Counter-based per-walk random numbers (scheduling-independent replay).

With a shared sequential RNG, walk trajectories depend on the *order*
batches happen to be processed — toggling preemptive scheduling or the
copy mode changes every outcome.  GPU random walk systems instead derive
each walk's randomness from ``(seed, walk_id, step)`` with a counter-based
generator (Philox-style), so any schedule produces identical trajectories.

:class:`CounterRNG` reproduces that contract in NumPy: the kernel loop sets
the per-call context (the walk ids and step counts of the lanes about to
step), and each subsequent draw mixes ``(seed, walk_id, step,
draw_index)`` through a splitmix64-style hash.  It exposes the small
``Generator`` surface the algorithms use (``random`` and ``integers``), so
``EngineConfig(rng_mode="counter")`` drops in without touching algorithm
code.

Initialization draws (start-vertex selection) happen before any walk
context exists and run once in a fixed order, so they fall back to an
ordinary seeded ``Generator``.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional, Tuple

import numpy as np

#: The blessed RNG surface of this module, the single source of truth
#: shared by the static passes (``house-rules`` ``rng-factory`` and the
#: interprocedural ``rng`` pass): constructing randomness through any
#: name *not* listed here, anywhere outside this module, is a lint
#: finding.  Extending the factory surface means extending this tuple —
#: which is exactly the review point the linters exist to create.
FACTORY_NAMES: Tuple[str, ...] = (
    "seeded_rng",
    "derive_seed",
    "splitmix64",
    "CounterRNG",
    "TenantCounterRNG",
)

#: Path suffix identifying this module to the static passes (the one
#: file allowed to touch ``np.random`` directly).
FACTORY_MODULE_SUFFIX = "core/prng.py"

#: splitmix64 constants.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

_SEED_MASK = 0xFFFFFFFFFFFFFFFF


def derive_seed(seed: Optional[int], stream: str) -> int:
    """Derive a named sub-stream's seed from a base seed, deterministically.

    Mixing ``crc32(stream)`` into the base seed through splitmix64 gives
    every ``(seed, stream)`` pair an independent, reproducible generator
    seed: the same pair always derives the same value, different stream
    names decorrelate even for adjacent base seeds (where ``seed + k``
    schemes collide).
    """
    base = np.uint64((seed or 0) & _SEED_MASK)
    tag = np.uint64(zlib.crc32(stream.encode("utf-8")))
    with np.errstate(over="ignore"):
        mixed = splitmix64(
            np.asarray([base + tag * _GAMMA], dtype=np.uint64)
        )
    return int(mixed[0])


def seeded_rng(
    seed: Optional[int] = None, stream: Optional[str] = None
) -> np.random.Generator:
    """The repo's single RNG factory (lint rule ``rng-factory``).

    Every ``numpy`` generator in ``src/repro`` is built here so runs stay
    deterministic and auditable.  ``stream=None`` returns exactly
    ``default_rng(seed)`` — bit-identical to the historical direct call
    sites, which keeps engine goldens and cross-baseline start-vertex
    alignment (every system seeded with ``cfg.seed`` draws the same
    stream).  A named ``stream`` derives an independent sub-stream via
    :func:`derive_seed`.
    """
    if stream is None:
        return np.random.default_rng(seed)
    return np.random.default_rng(derive_seed(seed, stream))


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 -> well-mixed uint64)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += _GAMMA
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


class CounterRNG:
    """Per-walk counter-based RNG with a ``Generator``-compatible surface.

    Draws require a context (set by the kernel loop); every draw within one
    context must cover *all* context lanes (``size == len(ids)``), which is
    how the vectorized algorithms already behave.  Subset draws (e.g.
    node2vec's rejection rounds) are unsupported — the engine rejects
    ``rng_mode="counter"`` for such algorithms up front.
    """

    def __init__(self, seed: Optional[int]) -> None:
        self.seed = np.uint64((seed or 0) & 0xFFFFFFFFFFFFFFFF)
        self._ids: Optional[np.ndarray] = None
        self._steps: Optional[np.ndarray] = None
        self._draw = 0
        self._init_rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def set_context(self, ids: np.ndarray, steps: np.ndarray) -> None:
        """Bind the walk lanes about to step (kernel loop hook)."""
        self._ids = ids.astype(np.uint64, copy=False)
        self._steps = steps.astype(np.uint64, copy=False)
        self._draw = 0

    def clear_context(self) -> None:
        self._ids = None
        self._steps = None

    @property
    def has_context(self) -> bool:
        return self._ids is not None

    def _uint64(self, size: int) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("CounterRNG draw without walk context")
        if size != self._ids.size:
            raise ValueError(
                f"counter draws must cover all {self._ids.size} context "
                f"lanes, got size={size}"
            )
        with np.errstate(over="ignore"):
            key = (
                self.seed
                + splitmix64(self._ids)
                + splitmix64(self._steps + np.uint64(0x632BE59BD9B4E019))
                + np.uint64(self._draw) * _GAMMA
            )
        self._draw += 1
        return splitmix64(key)

    # ------------------------------------------------------------------
    # Generator-compatible surface
    # ------------------------------------------------------------------
    def random(self, size: int) -> np.ndarray:
        """Uniform floats in [0, 1), one per context lane."""
        if not self.has_context:
            return self._init_rng.random(size)
        # 53-bit mantissa conversion, same as numpy's.
        return (self._uint64(size) >> np.uint64(11)) * (2.0 ** -53)

    def integers(
        self,
        low: Any,
        high: Any = None,
        size: Any = None,
        dtype: Any = np.int64,
    ) -> np.ndarray:
        """Uniform integers, one per context lane (or init fallback)."""
        if not self.has_context:
            return self._init_rng.integers(low, high, size=size, dtype=dtype)
        if high is None:
            low, high = 0, low
        if size is None:
            raise ValueError("size is required for counter draws")
        span = int(high) - int(low)
        if span <= 0:
            raise ValueError("high must exceed low")
        # Multiply-shift bounded mapping (negligible modulo bias for the
        # span sizes used here: vertex counts << 2^64).
        draws = self._uint64(int(size))
        scaled = (draws >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
        return (np.int64(low) + (scaled * span).astype(np.int64)).astype(dtype)


class TenantCounterRNG(CounterRNG):
    """Counter RNG whose key space is partitioned per tenant (per query).

    The serving front-end coalesces walks of many independent queries
    into one engine run.  Bit-identical replay per *query* requires each
    lane to hash exactly the key it would hash in a standalone
    ``CounterRNG(query_seed)`` run: ``(query_seed, local_walk_id, step,
    draw)``.  This subclass carries two side tables indexed by the
    coalesced run's *global* walk id — the owning query's seed and the
    walk's id local to that query — and substitutes them into the key
    whenever the kernel loop binds a context.  Context-free
    initialization draws keep the base-class fallback generator; the
    coalesced wrapper never uses it (start vertices are drawn per query
    from each query's own seeded stream).
    """

    def __init__(
        self,
        seed: Optional[int],
        lane_seeds: np.ndarray,
        lane_locals: np.ndarray,
    ) -> None:
        super().__init__(seed)
        lane_seeds = np.asarray(lane_seeds, dtype=np.uint64)
        lane_locals = np.asarray(lane_locals, dtype=np.uint64)
        if lane_seeds.shape != lane_locals.shape:
            raise ValueError(
                "lane_seeds and lane_locals must have identical shapes"
            )
        self._lane_seeds = lane_seeds
        self._lane_locals = lane_locals
        self._ctx_seeds: Optional[np.ndarray] = None
        self._ctx_locals: Optional[np.ndarray] = None

    def set_context(self, ids: np.ndarray, steps: np.ndarray) -> None:
        gids = ids.astype(np.int64, copy=False)
        if gids.size and int(gids.max()) >= self._lane_seeds.size:
            raise ValueError(
                f"walk id {int(gids.max())} beyond the tenant lane table "
                f"({self._lane_seeds.size} lanes)"
            )
        self._ctx_seeds = self._lane_seeds[gids]
        self._ctx_locals = self._lane_locals[gids]
        super().set_context(ids, steps)

    def clear_context(self) -> None:
        self._ctx_seeds = None
        self._ctx_locals = None
        super().clear_context()

    def _uint64(self, size: int) -> np.ndarray:
        if self._ids is None or self._ctx_seeds is None:
            raise RuntimeError("CounterRNG draw without walk context")
        if size != self._ids.size:
            raise ValueError(
                f"counter draws must cover all {self._ids.size} context "
                f"lanes, got size={size}"
            )
        if self._steps is None:
            raise RuntimeError("CounterRNG draw without walk context")
        with np.errstate(over="ignore"):
            key = (
                self._ctx_seeds
                + splitmix64(self._ctx_locals)
                + splitmix64(self._steps + np.uint64(0x632BE59BD9B4E019))
                + np.uint64(self._draw) * _GAMMA
            )
        self._draw += 1
        return splitmix64(key)
