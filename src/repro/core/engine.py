"""The LightTraffic engine: Algorithm 2 over the simulated substrate.

Semantics (which vertex every walk visits) are executed exactly with NumPy;
the simulated timeline answers how long each phase would take on the modeled
GPU and how phases overlap across the compute / load / evict streams.

One iteration of :meth:`LightTrafficEngine.run`:

1. the scheduler selects a partition ``i`` (selective: most walks);
2. if partition ``i``'s graph is not cached, either schedule an explicit
   copy on the load stream (evicting a victim if the graph pool is full) or
   mark the iteration zero-copy (adaptive rule ``alpha * w < S_p``);
3. while the load stream is busy, preemptively compute ready batches of
   *other* partitions whose graph + walks are both cached;
4. load partition ``i``'s host-resident walk batches one by one and compute
   each as soon as it lands; then compute the device-cached batches
   (including the frontier);
5. after each kernel, surviving walks are reshuffled into the device
   frontiers of their new partitions; if the walk pool exceeds ``m_w``,
   batches are evicted to the host over the full-duplex evict stream.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.adaptive import AdaptivePolicy
from repro.core.config import EngineConfig
from repro.core.scheduler import Scheduler
from repro.core.trace import (
    SERVED_EXPLICIT,
    SERVED_HIT,
    SERVED_ZERO_COPY,
    TraceRecorder,
)
from repro.core.stats import (
    CAT_GRAPH_LOAD,
    CAT_PATH_SHIP,
    CAT_KERNEL_OTHER,
    CAT_RESHUFFLE,
    CAT_WALK_EVICT,
    CAT_WALK_LOAD,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
    RunStats,
)
from repro.gpu.kernels import DIRECT_WRITE, KernelModel
from repro.gpu.memory import BlockPool
from repro.gpu.pcie import PCIeSpec, interconnect_by_name
from repro.gpu.timeline import Stream, Timeline
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph, partition_by_range
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.reshuffle import (
    DirectWriteReshuffler,
    TwoLevelReshuffler,
    group_by_partition,
)
from repro.walks.state import WalkArrays


class LightTrafficEngine:
    """Out-of-GPU-memory random walk engine (the paper's contribution)."""

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        config: EngineConfig = EngineConfig(),
        partitioned: Optional[PartitionedGraph] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.trace = trace
        self.partitioned = partitioned or partition_by_range(
            graph, config.partition_bytes
        )
        self.kernel_model = KernelModel(config.device, config.calibration)
        if isinstance(config.interconnect, PCIeSpec):
            self.pcie = config.interconnect
        else:
            self.pcie = interconnect_by_name(config.interconnect)
        self.adaptive = AdaptivePolicy(config.copy_mode, config.calibration)
        if isinstance(config.ship_interconnect, PCIeSpec):
            self.ship_link = config.ship_interconnect
        else:
            self.ship_link = interconnect_by_name(config.ship_interconnect)

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        """Run ``num_walks`` walks to completion; returns the statistics."""
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        cfg = self.config
        pgraph = self.partitioned
        num_partitions = pgraph.num_partitions
        batch_cap = cfg.resolved_batch_walks()
        capacity = cfg.walk_pool_walks
        if capacity is None:
            capacity = max(num_walks, batch_cap)
        if cfg.rng_mode == "counter":
            from repro.core.prng import CounterRNG

            uses_rejection = (
                getattr(self.algorithm, "weighted", False)
                and getattr(self.algorithm, "sampler", None) == "rejection"
            )
            if self.algorithm.name == "node2vec" or uses_rejection:
                raise ValueError(
                    "rng_mode='counter' does not support algorithms with "
                    "subset redraws (node2vec, rejection-sampled weights)"
                )
            rng = CounterRNG(cfg.seed)
        else:
            rng = np.random.default_rng(cfg.seed)

        host = HostWalkPool(num_partitions, batch_cap)
        device = DeviceWalkPool(num_partitions, batch_cap, capacity)
        graph_pool: BlockPool = BlockPool(
            cfg.graph_pool_partitions,
            name="graph-pool",
            track_recency=(cfg.eviction_policy == "lru"),
        )
        timeline = Timeline(record_ops=cfg.record_ops)
        scheduler = Scheduler(
            num_partitions,
            cfg.selective,
            cfg.preemptive,
            eviction_policy=cfg.eviction_policy,
        )
        reshuffler_cls = (
            DirectWriteReshuffler
            if cfg.reshuffle_mode == DIRECT_WRITE
            else TwoLevelReshuffler
        )
        reshuffler = reshuffler_cls(self.kernel_model, num_partitions)

        stats = RunStats(
            system="lighttraffic",
            algorithm=self.algorithm.name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
            num_partitions=num_partitions,
        )
        bytes_per_walk = self.algorithm.bytes_per_walk
        graph_ready: Dict[int, float] = {}
        finished = 0

        # ----- initialize walks into the host pool ---------------------
        starts = self.algorithm.start_vertices(self.graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, self.graph)
        start_parts = pgraph.find_partitions(walks.vertices)
        for part, group in group_by_partition(walks, start_parts).items():
            host.append_walks(part, group)

        # Per-partition kernel coefficients (latency per round, 1/steprate),
        # cached because partition sizes are static.
        kernel_coeff: Dict[int, tuple] = {}

        def update_time(part_idx: int, steps: int, rounds: int) -> float:
            if steps == 0:
                return 0.0
            coeff = kernel_coeff.get(part_idx)
            if coeff is None:
                nbytes = pgraph.partitions[part_idx].nbytes
                lat = cfg.calibration.sim_scale * self.kernel_model.device.cycles_to_seconds(
                    self.kernel_model.step_cycles(nbytes)
                )
                inv_rate = 1.0 / self.kernel_model.steps_per_second(nbytes)
                kernel_coeff[part_idx] = coeff = (lat, inv_rate)
            return max(rounds * coeff[0], steps * coeff[1])

        # ----- helpers --------------------------------------------------
        def sched(
            stream: Stream, duration: float, category: str, earliest: float
        ) -> float:
            """Schedule one op, serializing everything when pipelining is off."""
            if not cfg.pipeline:
                earliest = max(earliest, timeline.now)
            __, end = stream.schedule(duration, category, earliest=earliest)
            return end

        def enforce_walk_capacity(protect: int) -> None:
            while device.overflow > 0:
                victim_part = scheduler.walk_evict_partition(
                    graph_pool, device, protect=protect
                )
                batch = device.evict_batch(victim_part)
                copy_t = (
                    self.pcie.explicit_copy_time(batch.nbytes(bytes_per_walk))
                    + cfg.calibration.scaled_memcpy_call_seconds
                )
                sched(timeline.evict, copy_t, CAT_WALK_EVICT, 0.0)
                host.push_batch(batch)
                stats.walk_batches_evicted += 1
                if self.trace is not None:
                    self.trace.record_eviction()

        def process_walks(
            part_idx: int,
            contents,
            earliest: float,
            zero_copy: bool,
            preemptive: bool = False,
        ) -> None:
            nonlocal finished
            if not len(contents):
                return
            partition = pgraph.partitions[part_idx]
            result = self.algorithm.advance_in_partition(
                partition, contents, rng, self.graph
            )
            stats.total_steps += result.total_steps
            if self.trace is not None:
                self.trace.record_compute(
                    part_idx, len(contents), result.total_steps, preemptive
                )

            update_t = update_time(
                part_idx, result.total_steps, result.longest_run
            )
            if zero_copy:
                zc_bytes = result.total_steps * 2 * cfg.calibration.cacheline_bytes
                zc_time = self.pcie.zero_copy_time(zc_bytes, cfg.calibration)
                kernel_dur = max(update_t, zc_time)
            else:
                zc_time = 0.0
                kernel_dur = update_t
            k_end = sched(
                timeline.compute, kernel_dur, CAT_WALK_UPDATE, earliest
            )
            if zero_copy and zc_time > 0:
                sched(
                    timeline.load,
                    zc_time,
                    CAT_ZERO_COPY,
                    max(0.0, k_end - kernel_dur),
                )

            if cfg.ship_paths and self.algorithm.carries_walk_id:
                # Each executed step emits one (walk_id, vertex) pair to the
                # consumer GPU over the ship link (paper §IV-A assumption).
                ship_t = self.ship_link.explicit_copy_time(
                    result.total_steps * 16
                )
                sched(timeline.evict, ship_t, CAT_PATH_SHIP, 0.0)

            active = contents.select(result.active)
            finished += len(contents) - len(active)
            if len(active):
                new_parts = pgraph.find_partitions(active.vertices)
                reshuffle_t, __ = reshuffler.reshuffle(
                    device, active, new_parts
                )
                sched(timeline.compute, reshuffle_t, CAT_RESHUFFLE, 0.0)
            sched(
                timeline.compute,
                cfg.calibration.scaled_kernel_launch_seconds,
                CAT_KERNEL_OTHER,
                0.0,
            )
            enforce_walk_capacity(protect=part_idx)

        # ----- main loop (Algorithm 2) ----------------------------------
        while host.total_walks + device.cached_walks > 0:
            stats.iterations += 1
            if (
                cfg.max_iterations is not None
                and stats.iterations > cfg.max_iterations
            ):
                raise RuntimeError(
                    f"exceeded max_iterations={cfg.max_iterations} with "
                    f"{host.total_walks + device.cached_walks} walks left"
                )
            selected = scheduler.select_partition(host, device)
            if selected is None:  # pragma: no cover - guarded by loop cond
                break
            partition = pgraph.partitions[selected]
            part_walks = int(host.counts[selected] + device.counts[selected])

            zero_copy = False
            served = SERVED_EXPLICIT
            if graph_pool.lookup(selected) is not None:
                graph_t = graph_ready.get(selected, 0.0)
                served = SERVED_HIT
            elif self.adaptive.should_zero_copy(partition.nbytes, part_walks):
                zero_copy = True
                graph_t = 0.0
                stats.zero_copy_iterations += 1
                served = SERVED_ZERO_COPY
            else:
                if graph_pool.is_full:
                    victim = scheduler.graph_victim(
                        graph_pool, host, device, protect=selected
                    )
                    graph_pool.evict(victim)
                    graph_ready.pop(victim, None)
                copy_t = (
                    self.pcie.explicit_copy_time(partition.nbytes)
                    + cfg.calibration.scaled_memcpy_call_seconds
                )
                graph_t = sched(timeline.load, copy_t, CAT_GRAPH_LOAD, 0.0)
                graph_pool.insert(selected, partition)
                graph_ready[selected] = graph_t
                stats.explicit_copies += 1
            if self.trace is not None:
                self.trace.begin_iteration(stats.iterations, selected, served)

            # Preemptive scheduling: keep the GPU busy while loading.
            if cfg.preemptive and cfg.pipeline:
                while timeline.load.busy_until > timeline.compute.busy_until:
                    ready = scheduler.pick_preemptive_partition(
                        graph_pool, host, device, exclude=selected
                    )
                    if ready is None:
                        break
                    # A preemptive dispatch is by construction served from
                    # the graph pool — count it as a cache hit (Table III).
                    graph_pool.lookup(ready)
                    contents = device.pop_preemptible(ready)
                    process_walks(
                        ready,
                        contents,
                        earliest=graph_ready.get(ready, 0.0),
                        zero_copy=False,
                        preemptive=True,
                    )

            # Walk loading: host batches of the selected partition.  Each
            # batch is one transfer on the load stream; their computation is
            # modeled as one merged kernel dependent on the last transfer.
            batch_t = 0.0
            host_chunks = []
            while host.has_walks(selected):
                batch = host.pop_batch(selected)
                load_t = (
                    self.pcie.explicit_copy_time(batch.nbytes(bytes_per_walk))
                    + cfg.calibration.scaled_memcpy_call_seconds
                )
                batch_t = sched(timeline.load, load_t, CAT_WALK_LOAD, 0.0)
                stats.walk_batches_loaded += 1
                host_chunks.append(batch.drain())
            if host_chunks:
                process_walks(
                    selected,
                    WalkArrays.concat(host_chunks),
                    earliest=max(graph_t, batch_t),
                    zero_copy=zero_copy,
                )

            # Device-cached batches (including the write frontier).
            process_walks(
                selected,
                device.pop_all(selected),
                earliest=graph_t,
                zero_copy=zero_copy,
            )

        if finished != num_walks:
            raise RuntimeError(
                f"walk conservation violated: finished {finished} of "
                f"{num_walks}"
            )
        stats.graph_pool_hits = graph_pool.hits
        stats.graph_pool_misses = graph_pool.misses
        stats.total_time = timeline.total_time()
        stats.breakdown = timeline.breakdown.as_dict()
        if cfg.record_ops:
            timeline.validate()
        self._timeline = timeline
        return stats


def run_walks(
    graph: CSRGraph,
    algorithm: RandomWalkAlgorithm,
    num_walks: int,
    config: EngineConfig = EngineConfig(),
) -> RunStats:
    """One-call convenience: build an engine and run it."""
    return LightTrafficEngine(graph, algorithm, config).run(num_walks)
