"""The LightTraffic engine: Algorithm 2 over the simulated substrate.

Semantics (which vertex every walk visits) are executed exactly with NumPy;
the simulated timeline answers how long each phase would take on the modeled
GPU and how phases overlap across the compute / load / evict streams.

The engine is a thin orchestrator over the pipeline stages in
:mod:`repro.core.stages`.  One iteration of :meth:`LightTrafficEngine.run`:

1. the scheduler selects a partition ``i`` (selective: most walks);
2. :class:`~repro.core.stages.GraphServer` serves partition ``i``'s graph
   data — cache hit, explicit copy on the load stream (evicting a victim
   if the graph pool is full), or zero copy under the adaptive rule
   ``alpha * w < S_p``;
3. :class:`~repro.core.stages.PreemptiveDispatcher` computes ready batches
   of *other* cached partitions while the load stream is busy;
4. :class:`~repro.core.stages.WalkLoader` streams partition ``i``'s host
   batches, then :class:`~repro.core.stages.ComputeDispatcher` runs the
   merged kernel and the device-cached batches (including the frontier);
5. survivors are reshuffled into the device frontiers of their new
   partitions; if the walk pool exceeds ``m_w``, batches are evicted to
   the host over the full-duplex evict stream.

Every observable fact of a run — iterations, serve modes, loads, kernels,
reshuffles, evictions, finishes — is emitted as a typed event on an
:class:`~repro.core.events.EventBus`; statistics
(:class:`~repro.core.stats.StatsCollector`), traces
(:class:`~repro.core.trace.TraceSubscriber`) and per-partition metrics
(:class:`~repro.core.metrics.MetricsCollector`) are plain subscribers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.adaptive import AdaptivePolicy
from repro.core.config import EngineConfig
from repro.core.events import (
    EventBus,
    IterationStarted,
    RunCompleted,
    WalksSeeded,
)
from repro.core.metrics import MetricsCollector
from repro.core.prng import seeded_rng
from repro.core.scheduler import Scheduler
from repro.core.stages import (
    ComputeDispatcher,
    GraphServer,
    PreemptiveDispatcher,
    StageContext,
    WalkLoader,
)
from repro.core.stats import RunStats, StatsCollector
from repro.core.trace import TraceRecorder, TraceSubscriber
from repro.gpu.kernels import DIRECT_WRITE, KernelModel
from repro.gpu.memory import BlockPool
from repro.gpu.pcie import PCIeSpec, interconnect_by_name
from repro.gpu.timeline import Timeline
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph, partition_by_range
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.reshuffle import (
    DirectWriteReshuffler,
    TwoLevelReshuffler,
    group_by_partition,
)
from repro.walks.state import WalkArrays


class LightTrafficEngine:
    """Out-of-GPU-memory random walk engine (the paper's contribution)."""

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: RandomWalkAlgorithm,
        config: Optional[EngineConfig] = None,
        partitioned: Optional[PartitionedGraph] = None,
        trace: Optional[TraceRecorder] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        config = config if config is not None else EngineConfig()
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        if config.sampler is not None:
            algorithm.set_transition_sampler(config.sampler)
        self.trace = trace
        self.bus = bus
        self.metrics = metrics
        self.partitioned = partitioned or partition_by_range(
            graph, config.partition_bytes
        )
        self.kernel_model = KernelModel(config.device, config.calibration)
        if isinstance(config.interconnect, PCIeSpec):
            self.pcie = config.interconnect
        else:
            self.pcie = interconnect_by_name(config.interconnect)
        self.adaptive = AdaptivePolicy(config.copy_mode, config.calibration)
        if isinstance(config.ship_interconnect, PCIeSpec):
            self.ship_link = config.ship_interconnect
        else:
            self.ship_link = interconnect_by_name(config.ship_interconnect)

    # ------------------------------------------------------------------
    def _make_rng(self) -> Any:
        """The run's RNG (sequential stream or counter-based Philox)."""
        cfg = self.config
        if cfg.rng_mode == "counter":
            from repro.core.prng import CounterRNG, TenantCounterRNG

            if getattr(self.algorithm, "uses_subset_draws", False):
                raise ValueError(
                    "rng_mode='counter' does not support algorithms with "
                    "subset redraws (node2vec, rejection-sampled weights)"
                )
            # Coalesced serve batches carry per-lane (query seed, local
            # walk id) tables so every query replays bit-identically to
            # its standalone run regardless of batching.
            lanes = getattr(self.algorithm, "tenant_lanes", None)
            if lanes is not None:
                lane_seeds, lane_locals = lanes
                return TenantCounterRNG(cfg.seed, lane_seeds, lane_locals)
            return CounterRNG(cfg.seed)
        return seeded_rng(cfg.seed)

    def _make_backend(self) -> Any:
        """Create and bind the run's execution backend.

        Always constructed — the default ``simulated`` backend runs the
        historical NumPy path bit-identically while measuring its real
        wall-clock per kernel (``RunStats.measured``).
        """
        from repro.backends import make_backend

        backend = make_backend(self.config.backend)
        backend.bind(
            self.graph, self.partitioned, self.algorithm, self.config
        )
        return backend

    def _build_context(
        self, num_walks: int, bus: EventBus, backend: Any = None
    ) -> StageContext:
        """Assemble pools, timeline, scheduler and policies for one run."""
        cfg = self.config
        num_partitions = self.partitioned.num_partitions
        batch_cap = cfg.resolved_batch_walks()
        capacity = cfg.walk_pool_walks
        if capacity is None:
            capacity = max(num_walks, batch_cap)
        reshuffler_cls = (
            DirectWriteReshuffler
            if cfg.reshuffle_mode == DIRECT_WRITE
            else TwoLevelReshuffler
        )
        return StageContext(
            config=cfg,
            graph=self.graph,
            algorithm=self.algorithm,
            pgraph=self.partitioned,
            rng=self._make_rng(),
            scheduler=Scheduler(
                num_partitions,
                cfg.selective,
                cfg.preemptive,
                eviction_policy=cfg.eviction_policy,
            ),
            host=HostWalkPool(num_partitions, batch_cap),
            device=DeviceWalkPool(num_partitions, batch_cap, capacity),
            graph_pool=BlockPool(
                cfg.graph_pool_partitions,
                name="graph-pool",
                track_recency=(cfg.eviction_policy == "lru"),
            ),
            timeline=Timeline(record_ops=cfg.record_ops),
            bus=bus,
            reshuffler=reshuffler_cls(
                self.kernel_model, num_partitions, backend=backend
            ),
            kernel_model=self.kernel_model,
            pcie=self.pcie,
            ship_link=self.ship_link,
            bytes_per_walk=self.algorithm.bytes_per_walk,
            adaptive=self.adaptive,
            backend=backend,
        )

    def _seed_walks(self, ctx: StageContext, num_walks: int) -> None:
        """Initialize all walks into the host pool, grouped by partition."""
        starts = self.algorithm.start_vertices(self.graph, num_walks, ctx.rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, self.graph)
        if ctx.backend is not None:
            # Real backends precompute from the seeded state (trajectory
            # tables, worker forks) before the walks are split up.
            ctx.backend.on_walks_seeded(walks)
        start_parts = ctx.pgraph.find_partitions(walks.vertices)
        groups = group_by_partition(walks, start_parts)
        for part, group in groups.items():
            ctx.host.append_walks(part, group)
        ctx.bus.emit(WalksSeeded(walks=num_walks, partitions=len(groups)))

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        """Run ``num_walks`` walks to completion; returns the statistics."""
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        if self.config.devices > 1 and type(self) is LightTrafficEngine:
            # Multi-device configs run on the sharded engine; it reuses the
            # same stages per shard and adds P2P walk migration.
            from repro.core.cluster import MultiDeviceEngine

            engine = MultiDeviceEngine(
                self.graph,
                self.algorithm,
                self.config,
                partitioned=self.partitioned,
                trace=self.trace,
                bus=self.bus,
                metrics=self.metrics,
            )
            stats = engine.run(num_walks)
            self._timeline = engine._timeline
            return stats
        cfg = self.config
        bus = self.bus if self.bus is not None else EventBus()
        backend = self._make_backend()
        ctx = self._build_context(num_walks, bus, backend)
        stats = RunStats(
            system="lighttraffic",
            algorithm=self.algorithm.name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
            num_partitions=ctx.pgraph.num_partitions,
        )
        observers = [bus.attach(StatsCollector(stats, metrics=self.metrics))]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        if self.trace is not None:
            observers.append(bus.attach(TraceSubscriber(self.trace)))
        sanitizer = None
        if cfg.sanitize:
            from repro.analysis import Sanitizer

            sanitizer = Sanitizer().bind(
                timeline=ctx.timeline,
                graph_pool=ctx.graph_pool,
                host=ctx.host,
                device=ctx.device,
                expected_walks=num_walks,
            )
            observers.append(bus.attach(sanitizer))

        graph_server = GraphServer(ctx)
        loader = WalkLoader(ctx)
        compute = ComputeDispatcher(ctx)
        preemptive = PreemptiveDispatcher(ctx, compute)
        host, device, scheduler = ctx.host, ctx.device, ctx.scheduler
        try:
            self._seed_walks(ctx, num_walks)
            while host.total_walks + device.cached_walks > 0:
                ctx.iteration += 1
                if (
                    cfg.max_iterations is not None
                    and ctx.iteration > cfg.max_iterations
                ):
                    raise RuntimeError(
                        f"exceeded max_iterations={cfg.max_iterations} with "
                        f"{ctx.pending_walks} walks left"
                    )
                selected = scheduler.select_partition(host, device)
                if selected is None:  # pragma: no cover - guarded by loop
                    break
                bus.emit(
                    IterationStarted(
                        ctx.iteration, selected, ctx.partition_walks(selected)
                    )
                )
                served = graph_server.serve(selected)
                preemptive.fill(exclude=selected)
                contents, batch_t = loader.stream(selected)
                if contents is not None:
                    compute.dispatch(
                        selected,
                        contents,
                        earliest=max(served.ready_time, batch_t),
                        zero_copy=served.zero_copy,
                    )
                compute.dispatch(
                    selected,
                    device.pop_all(selected),
                    earliest=served.ready_time,
                    zero_copy=served.zero_copy,
                )

            if ctx.finished != num_walks:
                raise RuntimeError(
                    f"walk conservation violated: finished {ctx.finished} "
                    f"of {num_walks}"
                )
            bus.emit(
                RunCompleted(
                    total_time=ctx.timeline.total_time(),
                    breakdown=ctx.timeline.breakdown.as_dict(),
                    graph_pool_hits=ctx.graph_pool.hits,
                    graph_pool_misses=ctx.graph_pool.misses,
                    finished_walks=ctx.finished,
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
            if sanitizer is not None:
                sanitizer.unbind()
                stats.sanitizer = sanitizer.summary()
            backend.close()
        stats.backend = cfg.backend
        stats.measured = backend.timings().as_dict()
        if cfg.record_ops:
            ctx.timeline.validate()
        self._timeline = ctx.timeline
        return stats


def run_walks(
    graph: CSRGraph,
    algorithm: RandomWalkAlgorithm,
    num_walks: int,
    config: Optional[EngineConfig] = None,
) -> RunStats:
    """One-call convenience: build an engine and run it."""
    return LightTrafficEngine(graph, algorithm, config).run(num_walks)
