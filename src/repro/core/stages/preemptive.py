"""Preemptive scheduling stage (paper §III-D).

While the load stream is busy bringing in the selected partition, the GPU
would otherwise idle; the :class:`PreemptiveDispatcher` fills that window
by computing ready batches of *other* partitions whose graph and walks are
both already cached, as picked by the scheduler's batch-pick policy.
"""

from __future__ import annotations

from repro.core.stages.compute import ComputeDispatcher
from repro.core.stages.context import StageContext


class PreemptiveDispatcher:
    """Keeps the compute stream busy while loads are in flight."""

    def __init__(self, ctx: StageContext, compute: ComputeDispatcher) -> None:
        self.ctx = ctx
        self.compute = compute

    def fill(self, exclude: int) -> None:
        """Dispatch ready batches until compute catches up with load."""
        ctx = self.ctx
        cfg = ctx.config
        if not (cfg.preemptive and cfg.pipeline):
            return
        timeline = ctx.timeline
        while timeline.load.leads(timeline.compute):
            ready = ctx.scheduler.pick_preemptive_partition(
                ctx.graph_pool, ctx.host, ctx.device, exclude=exclude
            )
            if ready is None:
                break
            # A preemptive dispatch is by construction served from the
            # graph pool — count it as a cache hit (Table III).
            ctx.graph_pool.lookup(ready)
            contents = ctx.device.pop_preemptible(ready)
            self.compute.dispatch(
                ready,
                contents,
                # Kernels may start only after the graph is resident AND
                # any P2P-delivered walks have landed (``frontier_ready``
                # is empty on single-device runs, so this degenerates to
                # the original graph_ready bound).
                earliest=max(
                    ctx.graph_ready.get(ready, 0.0),
                    ctx.frontier_ready.get(ready, 0.0),
                ),
                zero_copy=False,
                preemptive=True,
            )
