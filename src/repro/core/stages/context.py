"""Shared run state threaded through the pipeline stages.

A :class:`StageContext` bundles everything one engine run owns — the
partitioned graph, scheduler, host/device pools, graph pool, simulated
timeline, RNG and event bus — so stages stay stateless policy objects.
The context also centralizes the two cross-stage helpers the monolithic
engine used as closures: pipeline-aware op scheduling (:meth:`sched`) and
the cached per-partition kernel-time model (:meth:`update_time`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.adaptive import AdaptivePolicy
from repro.core.config import EngineConfig
from repro.core.events import EventBus
from repro.core.scheduler import Scheduler
from repro.gpu.cluster import DeviceCluster
from repro.gpu.kernels import KernelModel
from repro.gpu.memory import BlockPool
from repro.gpu.pcie import PCIeSpec
from repro.gpu.timeline import Stream, Timeline
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph
from repro.walks.pool import DeviceWalkPool, HostWalkPool


@dataclass
class StageContext:
    """Everything one engine run shares across its pipeline stages."""

    config: EngineConfig
    graph: CSRGraph
    algorithm: RandomWalkAlgorithm
    pgraph: PartitionedGraph
    rng: object
    scheduler: Scheduler
    host: HostWalkPool
    device: DeviceWalkPool
    graph_pool: BlockPool
    timeline: Timeline
    bus: EventBus
    reshuffler: object
    kernel_model: KernelModel
    pcie: PCIeSpec
    ship_link: PCIeSpec
    bytes_per_walk: int
    adaptive: AdaptivePolicy
    #: completion time of each cached partition's last explicit load.
    graph_ready: Dict[int, float] = field(default_factory=dict)
    #: which device shard this context belongs to (0 = single-GPU path).
    device_id: int = 0
    #: the shard map + P2P mesh when running multi-device, else ``None``.
    cluster: Optional[DeviceCluster] = None
    #: migration router (:class:`repro.core.cluster.WalkMigrator`) the
    #: compute stage hands cross-shard walks to; ``None`` = single device.
    router: Optional[object] = None
    #: execution backend (:class:`repro.backends.ExecutionBackend`)
    #: running the walk-update kernels; ``None`` = call the algorithm
    #: inline (the historical path, kept for baselines/tests that build
    #: contexts by hand).
    backend: Optional[object] = None
    #: arrival time of the latest P2P delivery into each partition —
    #: kernels over migrated walks may not start before their payload
    #: lands (the multi-device analog of :attr:`graph_ready`).
    frontier_ready: Dict[int, float] = field(default_factory=dict)
    iteration: int = 0
    finished: int = 0
    _kernel_coeff: Dict[int, Tuple[float, float]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def sched(
        self, stream: Stream, duration: float, category: str, earliest: float
    ) -> float:
        """Schedule one op, serializing everything when pipelining is off."""
        if not self.config.pipeline:
            earliest = max(earliest, self.timeline.now)
        __, end = stream.schedule(duration, category, earliest=earliest)
        return end

    def update_time(self, part_idx: int, steps: int, rounds: int) -> float:
        """Walk-update kernel duration for ``steps`` over ``rounds`` passes.

        Per-partition coefficients (latency per round, 1/steprate) are
        cached because partition sizes — and the algorithm's transition
        sampler, whose per-step cycles the model charges — are static for
        the whole run.
        """
        if steps == 0:
            return 0.0
        coeff = self._kernel_coeff.get(part_idx)
        if coeff is None:
            nbytes = self.pgraph.partitions[part_idx].nbytes
            cal = self.config.calibration
            sampler = getattr(self.algorithm, "transition_sampler", "uniform")
            lat = cal.sim_scale * self.kernel_model.device.cycles_to_seconds(
                self.kernel_model.step_cycles(nbytes, sampler)
            )
            inv_rate = 1.0 / self.kernel_model.steps_per_second(
                nbytes, sampler
            )
            self._kernel_coeff[part_idx] = coeff = (lat, inv_rate)
        return max(rounds * coeff[0], steps * coeff[1])

    # ------------------------------------------------------------------
    @property
    def pending_walks(self) -> int:
        """Walks not yet finished, wherever they currently live."""
        return self.host.total_walks + self.device.cached_walks

    def partition_walks(self, part_idx: int) -> int:
        """Current host + device walk count of one partition."""
        return int(
            self.host.counts[part_idx] + self.device.counts[part_idx]
        )

    def release_partition(self, part_idx: int) -> list:
        """Surrender one partition's walks and per-partition bookkeeping.

        Used when ownership leaves this shard — elastic rebalance hands
        the partition to a peer, or the shard failed and survivors take
        over.  Drains every pending walk of the partition out of the
        host and device pools (returned as a list of
        :class:`~repro.walks.state.WalkArrays` groups, ready to append
        into the new owner's pools) and drops the partition's readiness
        gates and any cached graph block, so no stale state survives the
        handoff.
        """
        groups = []
        while self.host.has_walks(part_idx):
            batch = self.host.pop_batch(part_idx)
            walks = batch.drain()
            if len(walks):
                groups.append(walks)
        if self.device.has_walks(part_idx):
            walks = self.device.pop_all(part_idx)
            if len(walks):
                groups.append(walks)
        self.graph_ready.pop(part_idx, None)
        self.frontier_ready.pop(part_idx, None)
        if part_idx in self.graph_pool:
            self.graph_pool.evict(part_idx)
        return groups
