"""Compute stage: walk-update kernels, reshuffle, capacity enforcement.

The :class:`ComputeDispatcher` advances a group of walks inside one graph
partition (real NumPy semantics), schedules the corresponding kernel on the
compute stream (overlapped with zero-copy PCIe occupancy when the partition
is served that way), reshuffles survivors into their new partitions'
frontiers, and evicts walk batches to the host whenever the device walk
pool exceeds ``m_w`` — emitting one typed event per observable fact.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import (
    BatchEvicted,
    KernelDispatched,
    Reshuffled,
    WalkFinished,
)
from repro.core.stages.context import StageContext
from repro.core.stats import (
    CAT_KERNEL_OTHER,
    CAT_PATH_SHIP,
    CAT_RESHUFFLE,
    CAT_WALK_EVICT,
    CAT_WALK_UPDATE,
    CAT_ZERO_COPY,
)
from repro.walks.state import WalkArrays


class ComputeDispatcher:
    """Runs walk-update kernels and the post-kernel bookkeeping."""

    def __init__(self, ctx: StageContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    def enforce_walk_capacity(self, protect: Optional[int]) -> None:
        """Evict walk batches until the device pool fits ``m_w`` again."""
        ctx = self.ctx
        while ctx.device.overflow > 0:
            victim_part = ctx.scheduler.walk_evict_partition(
                ctx.graph_pool, ctx.device, protect=protect
            )
            batch = ctx.device.evict_batch(victim_part)
            copy_t = (
                ctx.pcie.explicit_copy_time(
                    batch.nbytes(ctx.bytes_per_walk)
                )
                + ctx.config.calibration.scaled_memcpy_call_seconds
            )
            ctx.sched(ctx.timeline.evict, copy_t, CAT_WALK_EVICT, 0.0)
            ctx.host.push_batch(batch)
            ctx.bus.emit(
                BatchEvicted(
                    partition=victim_part,
                    walks=batch.size,
                    seconds=copy_t,
                    device=ctx.device_id,
                )
            )

    # ------------------------------------------------------------------
    def dispatch(
        self,
        part_idx: int,
        contents: WalkArrays,
        earliest: float,
        zero_copy: bool,
        preemptive: bool = False,
    ) -> None:
        """Advance ``contents`` inside partition ``part_idx`` once."""
        ctx = self.ctx
        if not len(contents):
            return
        cfg = ctx.config
        partition = ctx.pgraph.partitions[part_idx]
        backend = ctx.backend
        if backend is not None:
            # Execution is delegated (and wall-clock measured) by the
            # backend; the returned BatchRunResult still feeds the
            # simulated cost model below, unchanged.
            result = backend.advance(partition, contents, ctx.rng, ctx.graph)
        else:
            result = ctx.algorithm.advance_in_partition(
                partition, contents, ctx.rng, ctx.graph
            )
        fallbacks = ctx.algorithm.consume_sampler_fallbacks()

        update_t = ctx.update_time(
            part_idx, result.total_steps, result.longest_run
        )
        if zero_copy:
            zc_bytes = (
                result.total_steps * 2 * cfg.calibration.cacheline_bytes
            )
            zc_time = ctx.pcie.zero_copy_time(zc_bytes, cfg.calibration)
            kernel_dur = max(update_t, zc_time)
        else:
            zc_time = 0.0
            kernel_dur = update_t
        k_end = ctx.sched(
            ctx.timeline.compute, kernel_dur, CAT_WALK_UPDATE, earliest
        )
        if zero_copy and zc_time > 0:
            ctx.sched(
                ctx.timeline.load,
                zc_time,
                CAT_ZERO_COPY,
                max(0.0, k_end - kernel_dur),
            )
        ctx.bus.emit(
            KernelDispatched(
                partition=part_idx,
                walks=len(contents),
                steps=result.total_steps,
                preemptive=preemptive,
                zero_copy=zero_copy,
                seconds=kernel_dur,
                sampler_fallbacks=fallbacks,
                device=ctx.device_id,
            )
        )

        if cfg.ship_paths and ctx.algorithm.carries_walk_id:
            # Each executed step emits one (walk_id, vertex) pair to the
            # consumer GPU over the ship link (paper §IV-A assumption).
            ship_t = ctx.ship_link.explicit_copy_time(
                result.total_steps * 16
            )
            ctx.sched(ctx.timeline.evict, ship_t, CAT_PATH_SHIP, 0.0)

        active = contents.select(result.active)
        finished_now = len(contents) - len(active)
        ctx.finished += finished_now
        if finished_now:
            ctx.bus.emit(
                WalkFinished(
                    partition=part_idx,
                    count=finished_now,
                    device=ctx.device_id,
                )
            )
        if len(active):
            new_parts = ctx.pgraph.find_partitions(active.vertices)
            if ctx.router is not None:
                # Multi-device: walks that stepped into another shard's
                # partition range migrate over a peer channel instead of
                # reshuffling locally.
                active, new_parts = ctx.router.route(
                    ctx, part_idx, active, new_parts, k_end
                )
        if len(active):
            reshuffle_t, __ = ctx.reshuffler.reshuffle(
                ctx.device, active, new_parts
            )
            ctx.sched(ctx.timeline.compute, reshuffle_t, CAT_RESHUFFLE, 0.0)
            ctx.bus.emit(
                Reshuffled(
                    partition=part_idx,
                    walks=len(active),
                    seconds=reshuffle_t,
                    device=ctx.device_id,
                )
            )
        ctx.sched(
            ctx.timeline.compute,
            cfg.calibration.scaled_kernel_launch_seconds,
            CAT_KERNEL_OTHER,
            0.0,
        )
        self.enforce_walk_capacity(protect=part_idx)
