"""Walk loading stage: stream the selected partition's host batches.

Each host batch is one transfer on the load stream (paper §III-B); their
computation is modeled downstream as one merged kernel dependent on the
last transfer, so the loader returns the concatenated walk contents plus
the completion time of the final batch transfer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.events import BatchLoaded
from repro.core.stages.context import StageContext
from repro.core.stats import CAT_WALK_LOAD
from repro.walks.state import WalkArrays


class WalkLoader:
    """Streams host-resident walk batches of one partition to the device."""

    def __init__(self, ctx: StageContext) -> None:
        self.ctx = ctx

    def stream(self, part_idx: int) -> Tuple[Optional[WalkArrays], float]:
        """Load every host batch of ``part_idx``.

        Returns ``(contents, ready_time)`` where ``contents`` is the merged
        walk payload (``None`` when the host pool held nothing) and
        ``ready_time`` is when the last transfer completes.
        """
        ctx = self.ctx
        batch_t = 0.0
        chunks = []
        while ctx.host.has_walks(part_idx):
            batch = ctx.host.pop_batch(part_idx)
            load_t = (
                ctx.pcie.explicit_copy_time(
                    batch.nbytes(ctx.bytes_per_walk)
                )
                + ctx.config.calibration.scaled_memcpy_call_seconds
            )
            batch_t = ctx.sched(
                ctx.timeline.load, load_t, CAT_WALK_LOAD, 0.0
            )
            ctx.bus.emit(
                BatchLoaded(
                    partition=part_idx,
                    walks=batch.size,
                    seconds=load_t,
                    device=ctx.device_id,
                )
            )
            chunks.append(batch.drain())
        if not chunks:
            return None, batch_t
        return WalkArrays.concat(chunks), batch_t
