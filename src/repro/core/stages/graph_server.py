"""Graph serving stage: cache lookup, adaptive zero copy, explicit load.

For the selected partition, the :class:`GraphServer` answers *how the GPU
gets the graph data* this iteration (paper §III-D/§III-E):

1. **hit** — the partition is cached in the graph pool; no transfer.
2. **zero_copy** — the adaptive rule ``alpha * w < S_p`` holds (few walks,
   stragglers): the kernel reads host memory over PCIe at cache-line
   granularity instead of paying a whole-partition load.
3. **explicit** — a full partition copy on the load stream, evicting a
   victim chosen by the scheduler when the pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import (
    SERVED_EXPLICIT,
    SERVED_HIT,
    SERVED_ZERO_COPY,
    GraphServed,
)
from repro.core.stages.context import StageContext
from repro.core.stats import CAT_GRAPH_LOAD


@dataclass(frozen=True)
class ServeResult:
    """Outcome of serving one partition's graph data."""

    partition: int
    mode: str
    ready_time: float

    @property
    def zero_copy(self) -> bool:
        return self.mode == SERVED_ZERO_COPY


class GraphServer:
    """Serves the selected partition's graph data to the GPU."""

    def __init__(self, ctx: StageContext) -> None:
        self.ctx = ctx

    def serve(self, part_idx: int) -> ServeResult:
        ctx = self.ctx
        partition = ctx.pgraph.partitions[part_idx]
        part_walks = ctx.partition_walks(part_idx)

        copy_t = 0.0
        if ctx.graph_pool.lookup(part_idx) is not None:
            mode = SERVED_HIT
            graph_t = ctx.graph_ready.get(part_idx, 0.0)
        elif ctx.adaptive.should_zero_copy(partition.nbytes, part_walks):
            mode = SERVED_ZERO_COPY
            graph_t = 0.0
        else:
            mode = SERVED_EXPLICIT
            if ctx.graph_pool.is_full:
                victim = ctx.scheduler.graph_victim(
                    ctx.graph_pool, ctx.host, ctx.device, protect=part_idx
                )
                ctx.graph_pool.evict(victim)
                ctx.graph_ready.pop(victim, None)
            copy_t = (
                ctx.pcie.explicit_copy_time(partition.nbytes)
                + ctx.config.calibration.scaled_memcpy_call_seconds
            )
            graph_t = ctx.sched(
                ctx.timeline.load, copy_t, CAT_GRAPH_LOAD, 0.0
            )
            ctx.graph_pool.insert(part_idx, partition)
            ctx.graph_ready[part_idx] = graph_t
        ctx.bus.emit(
            GraphServed(
                iteration=ctx.iteration,
                partition=part_idx,
                mode=mode,
                copy_seconds=copy_t,
                ready_time=graph_t,
                device=ctx.device_id,
            )
        )
        return ServeResult(part_idx, mode, graph_t)
