"""Pipeline stages of the LightTraffic engine (Algorithm 2, decomposed).

Each stage owns one phase of the paper's 3-phase pipeline and communicates
only through the shared :class:`~repro.core.stages.context.StageContext`
(scheduler, pools, timeline) and the
:class:`~repro.core.events.EventBus`:

* :class:`~repro.core.stages.graph_server.GraphServer` — graph-pool cache
  lookup, adaptive zero-copy decision, explicit load + victim eviction;
* :class:`~repro.core.stages.walk_loader.WalkLoader` — host walk-batch
  streaming on the load stream;
* :class:`~repro.core.stages.compute.ComputeDispatcher` — walk-update
  kernels, reshuffling, walk-pool capacity enforcement;
* :class:`~repro.core.stages.preemptive.PreemptiveDispatcher` — keeps the
  compute stream busy with ready batches while loads are in flight.

Stages mutate no statistics: every observable fact is emitted as a typed
event, and observation lives entirely in bus subscribers.
"""

from repro.core.stages.context import StageContext
from repro.core.stages.graph_server import GraphServer, ServeResult
from repro.core.stages.walk_loader import WalkLoader
from repro.core.stages.compute import ComputeDispatcher
from repro.core.stages.preemptive import PreemptiveDispatcher

__all__ = [
    "StageContext",
    "GraphServer",
    "ServeResult",
    "WalkLoader",
    "ComputeDispatcher",
    "PreemptiveDispatcher",
]
