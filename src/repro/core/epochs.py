"""Multi-epoch driver for embedding-style workloads.

Graph embedding "often takes hundreds of epochs to converge, and each epoch
requires to concurrently run |V| walks" (paper §II-A).  This driver runs a
sequence of engine invocations — one per epoch, each with a fresh algorithm
instance and a derived seed — and aggregates the statistics, which is how a
downstream DeepWalk/metapath2vec pipeline would actually consume the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.algorithms.base import RandomWalkAlgorithm
from repro.core.config import EngineConfig
from repro.core.engine import LightTrafficEngine
from repro.core.stats import RunStats
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionedGraph, partition_by_range


@dataclass
class EpochResult:
    """Aggregate outcome of a multi-epoch run."""

    epochs: int
    num_walks_per_epoch: int
    total_steps: int = 0
    total_time: float = 0.0
    per_epoch: List[RunStats] = field(default_factory=list)
    algorithms: List[RandomWalkAlgorithm] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.total_steps / self.total_time if self.total_time else 0.0

    @property
    def mean_epoch_time(self) -> float:
        return self.total_time / self.epochs if self.epochs else 0.0


def run_epochs(
    graph: CSRGraph,
    algorithm_factory: Callable[[], RandomWalkAlgorithm],
    epochs: int,
    num_walks: Optional[int] = None,
    config: EngineConfig = EngineConfig(),
    keep_algorithms: bool = True,
) -> EpochResult:
    """Run ``epochs`` independent walk epochs over one shared partitioning.

    The graph is partitioned once (static range partitioning survives across
    epochs); each epoch gets a fresh algorithm instance and seed
    ``config.seed + epoch`` so epochs draw independent trajectories, as an
    embedding trainer requires.

    ``keep_algorithms=False`` drops per-epoch algorithm state (paths, visit
    counts) after each epoch to bound memory on long trainings.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if num_walks is None:
        num_walks = graph.num_vertices
    partitioned: PartitionedGraph = partition_by_range(
        graph, config.partition_bytes
    )
    result = EpochResult(epochs=epochs, num_walks_per_epoch=num_walks)
    base_seed = config.seed or 0
    for epoch in range(epochs):
        algorithm = algorithm_factory()
        engine = LightTrafficEngine(
            graph,
            algorithm,
            config.with_options(seed=base_seed + epoch),
            partitioned=partitioned,
        )
        stats = engine.run(num_walks)
        result.total_steps += stats.total_steps
        result.total_time += stats.total_time
        result.per_epoch.append(stats)
        if keep_algorithms:
            result.algorithms.append(algorithm)
    return result
