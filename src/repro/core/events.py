"""Typed engine events and the :class:`EventBus`.

Every system in this repository (the LightTraffic engine, the out-of-memory
baselines, the benchmark harness) reports what it is doing through one
shared vocabulary of events instead of mutating counters inline.  The
engine's main loop emits events at each phase boundary of Algorithm 2;
observers — :class:`~repro.core.stats.StatsCollector`,
:class:`~repro.core.trace.TraceSubscriber`,
:class:`~repro.core.metrics.MetricsCollector`, or any user code — subscribe
to the types they care about.  This keeps the hot loop free of observation
logic and makes new instrumentation a subscriber away.

Delivery semantics
------------------
* Events are delivered *synchronously*, in emission order.
* Handlers for one event type run in subscription order.
* :meth:`EventBus.emit` with no subscribers for the event's type is a
  single dict lookup (the no-op fast path); emitters that want to skip
  event construction entirely can guard with :meth:`EventBus.wants`.

Event taxonomy (one engine iteration, in emission order)
--------------------------------------------------------
``IterationStarted``  → ``GraphServed`` (hit | explicit | zero_copy)
→ preemptive ``KernelDispatched``\\ s → ``BatchLoaded``\\ s
→ ``KernelDispatched`` → ``Reshuffled`` / ``WalkFinished`` /
``BatchEvicted`` … and one final ``RunCompleted`` carrying the timeline
totals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Type

#: How the selected partition's graph data was served (GraphServed.mode).
SERVED_HIT = "hit"
SERVED_EXPLICIT = "explicit"
SERVED_ZERO_COPY = "zero_copy"

SERVED_MODES = (SERVED_HIT, SERVED_EXPLICIT, SERVED_ZERO_COPY)


@dataclass(frozen=True)
class EngineEvent:
    """Base class of every event carried by the :class:`EventBus`."""


@dataclass(frozen=True)
class WalksSeeded(EngineEvent):
    """All of a run's walks were seeded into host pools, pre-iteration.

    Emitted exactly once per run, after
    :meth:`~repro.core.engine.LightTrafficEngine._seed_walks` (or the
    multi-device sharded seeding) populates the host pools — the one
    mutation of shared pipeline state that happens before the iteration
    loop, made observable so subscribers (notably the runtime sanitizer's
    walk-conservation check) see the run's true starting population.
    ``partitions`` is the number of distinct start partitions.
    """

    walks: int
    partitions: int = 0


@dataclass(frozen=True)
class IterationStarted(EngineEvent):
    """One iteration of the engine's main loop began.

    ``pending_walks`` is the number of walks (host + device) of the
    selected partition at selection time.
    """

    iteration: int
    partition: int
    pending_walks: int = 0
    device: int = 0


@dataclass(frozen=True)
class GraphServed(EngineEvent):
    """The selected partition's graph data was made available.

    ``mode`` is one of :data:`SERVED_HIT` (graph-pool cache hit),
    :data:`SERVED_EXPLICIT` (explicit copy on the load stream) or
    :data:`SERVED_ZERO_COPY` (adaptive rule ``alpha * w < S_p``).
    ``copy_seconds`` is the transfer cost paid this event (0 for hits and
    zero-copy serves — zero-copy PCIe occupancy is accounted per kernel).
    ``ready_time`` is the simulated time at which dependent kernels may
    start.
    """

    iteration: int
    partition: int
    mode: str
    copy_seconds: float = 0.0
    ready_time: float = 0.0
    device: int = 0


@dataclass(frozen=True)
class BatchLoaded(EngineEvent):
    """One host-resident walk batch was streamed to the device."""

    partition: int
    walks: int
    seconds: float = 0.0
    device: int = 0


@dataclass(frozen=True)
class KernelDispatched(EngineEvent):
    """One walk-update kernel was dispatched for a partition's walks.

    ``sampler_fallbacks`` counts walks whose bounded rejection sampler
    saturated during this kernel and accepted an unvetted candidate —
    nonzero values flag distribution-quality degradation.
    """

    partition: int
    walks: int
    steps: int
    preemptive: bool = False
    zero_copy: bool = False
    seconds: float = 0.0
    sampler_fallbacks: int = 0
    device: int = 0


@dataclass(frozen=True)
class Reshuffled(EngineEvent):
    """Surviving walks were reshuffled into their new partitions' frontiers."""

    partition: int
    walks: int
    seconds: float = 0.0
    device: int = 0


@dataclass(frozen=True)
class BatchEvicted(EngineEvent):
    """One walk batch was evicted to the host (walk pool over ``m_w``)."""

    partition: int
    walks: int
    seconds: float = 0.0
    device: int = 0


@dataclass(frozen=True)
class WalkFinished(EngineEvent):
    """``count`` walks terminated while computing ``partition``."""

    partition: int
    count: int
    device: int = 0


@dataclass(frozen=True)
class WalksMigrated(EngineEvent):
    """``walks`` walks left ``src_device`` over a peer channel.

    Emitted once per (kernel, destination device) by the source shard.
    ``seconds`` is the send cost accounted on the source evict stream;
    ``nbytes`` the payload riding the channel.
    """

    src_device: int
    dst_device: int
    walks: int
    nbytes: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class WalksDelivered(EngineEvent):
    """``walks`` migrated walks landed in ``dst_device``'s walk pool.

    ``arrival`` is the simulated time the peer channel finished carrying
    the payload; the destination shard may not schedule kernels over
    these walks earlier.
    """

    src_device: int
    dst_device: int
    walks: int
    arrival: float = 0.0


@dataclass(frozen=True)
class DeviceFailed(EngineEvent):
    """``device`` failed at the sweep boundary before ``iteration``.

    ``pending_walks`` is the shard's unfinished-walk population drained
    for recovery; ``partitions`` the owned partitions reassigned to
    survivors.  Emitted *after* the recovered walks have been appended
    to surviving shards, so conservation-auditing subscribers observe a
    consistent cluster.
    """

    device: int
    iteration: int
    pending_walks: int = 0
    partitions: int = 0


@dataclass(frozen=True)
class DeviceRecoveredWalks(EngineEvent):
    """``walks`` walks of failed ``src_device`` landed on ``dst_device``.

    Emitted once per surviving destination after a failure; the sum of
    ``walks`` over destinations must equal the failure's
    ``pending_walks`` (audited by the sanitizer's recovery extension of
    the migration-conservation rule).
    """

    src_device: int
    dst_device: int
    walks: int
    partitions: int = 0


@dataclass(frozen=True)
class ShardRebalanced(EngineEvent):  # lint: allow-event-device-coverage
    """The elastic controller moved partition ownership between shards.

    One event per rebalance operation; cluster-scoped by design (hence
    the device-coverage waiver) — a rebalance spans many shards at
    once, and the per-pair payload movement is reported through the
    ordinary ``WalksMigrated`` / ``WalksDelivered`` pair so the
    migration-conservation machinery covers the rebalance path
    unchanged.
    """

    iteration: int
    moved_partitions: int = 0
    walks_moved: int = 0


@dataclass(frozen=True)
class QueryAdmitted(EngineEvent):
    """The serve front-end admitted one client query into a batch.

    Emitted by the admission controller on the serve session's bus the
    moment a query leaves its client and joins the pending frontier.
    ``request_id`` is unique within the session, ``walks`` the number of
    walks the query asked for, and ``arrival`` the simulated submission
    time.  Session-scoped (no iteration/device identity): a query spans
    whole engine runs, not shard iterations.
    """

    request_id: int
    kind: str
    walks: int
    arrival: float = 0.0


@dataclass(frozen=True)
class QueryCompleted(EngineEvent):
    """All walks of one admitted query finished and were routed back.

    Emitted by the completion router after demultiplexing a finished
    coalesced batch.  ``walks`` is the number of walks actually routed
    to the request (the sanitizer's request-conservation rule audits it
    against the admitted count), ``batch`` the coalesced batch index the
    query rode in, and the three latency fields satisfy
    ``queue_seconds + service_seconds == total_seconds`` exactly.
    """

    request_id: int
    kind: str
    walks: int
    batch: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass(frozen=True)
class RunCompleted(EngineEvent):
    """The run drained every walk; carries the end-of-run totals."""

    total_time: float
    breakdown: Mapping[str, float] = field(default_factory=dict)
    graph_pool_hits: int = 0
    graph_pool_misses: int = 0
    finished_walks: int = 0


#: Every event type, in rough emission order (drives subscriber binding).
EVENT_TYPES = (
    WalksSeeded,
    IterationStarted,
    GraphServed,
    BatchLoaded,
    KernelDispatched,
    Reshuffled,
    BatchEvicted,
    WalkFinished,
    WalksMigrated,
    WalksDelivered,
    DeviceFailed,
    DeviceRecoveredWalks,
    ShardRebalanced,
    QueryAdmitted,
    QueryCompleted,
    RunCompleted,
)

_SNAKE_RE = re.compile(r"(?<!^)(?=[A-Z])")


def _handler_name(event_type: Type[EngineEvent]) -> str:
    """``KernelDispatched`` → ``on_kernel_dispatched``."""
    return "on_" + _SNAKE_RE.sub("_", event_type.__name__).lower()


class EventBus:
    """Synchronous publish/subscribe hub for :class:`EngineEvent` types.

    Subscribe either per event type (:meth:`subscribe`) or by attaching an
    object whose ``on_<event_name>`` methods are bound automatically
    (:meth:`attach`) — e.g. ``on_graph_served`` receives every
    :class:`GraphServed`.

    Lifecycle contract: register all subscribers *before* the first
    :meth:`emit` of the event type they care about — the bus keeps no
    history, so a late subscriber silently misses everything already
    published.  ``repro lint --strict`` enforces this ordering
    statically (rule ``typestate-order``).
    """

    __slots__ = ("_handlers",)

    def __init__(self) -> None:
        self._handlers: Dict[Type[EngineEvent], List[Callable]] = {}

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self, event_type: Type[EngineEvent], handler: Callable
    ) -> Callable:
        """Register ``handler`` for ``event_type``; returns the handler."""
        if not (
            isinstance(event_type, type)
            and issubclass(event_type, EngineEvent)
        ):
            raise TypeError(f"not an EngineEvent type: {event_type!r}")
        if not callable(handler):
            raise TypeError("handler must be callable")
        self._handlers.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(
        self, event_type: Type[EngineEvent], handler: Callable
    ) -> None:
        handlers = self._handlers.get(event_type)
        if not handlers or handler not in handlers:
            raise KeyError(
                f"handler not subscribed to {event_type.__name__}"
            )
        handlers.remove(handler)
        if not handlers:
            del self._handlers[event_type]

    def attach(self, subscriber: Any) -> Any:
        """Bind every ``on_<event>`` method of ``subscriber``; returns it."""
        bound = 0
        for event_type in EVENT_TYPES:
            method = getattr(subscriber, _handler_name(event_type), None)
            if callable(method):
                self.subscribe(event_type, method)
                bound += 1
        if not bound:
            raise TypeError(
                f"{type(subscriber).__name__} defines no on_<event> handler"
            )
        return subscriber

    def detach(self, subscriber: Any) -> None:
        """Remove every handler previously bound by :meth:`attach`."""
        for event_type in EVENT_TYPES:
            method = getattr(subscriber, _handler_name(event_type), None)
            if callable(method):
                handlers = self._handlers.get(event_type)
                if handlers and method in handlers:
                    handlers.remove(method)
                    if not handlers:
                        del self._handlers[event_type]

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def wants(self, event_type: Type[EngineEvent]) -> bool:
        """Whether any subscriber listens for ``event_type``."""
        return event_type in self._handlers

    @property
    def active(self) -> bool:
        """Whether any subscriber is attached at all."""
        return bool(self._handlers)

    def emit(self, event: EngineEvent) -> None:
        """Deliver ``event`` to its subscribers (no-op when there are none)."""
        handlers = self._handlers.get(type(event))
        if handlers is None:
            return
        for handler in list(handlers):
            handler(event)
