"""Multi-device sharded engine with peer-to-peer walk migration.

:class:`MultiDeviceEngine` runs the LightTraffic pipeline on ``N``
simulated devices.  The range-partitioned graph is sharded contiguously
across the devices (:func:`repro.gpu.cluster.assign_partitions`), and each
shard owns the full single-device substrate: its own
:class:`~repro.gpu.timeline.Timeline` (compute/load/evict streams), graph
pool, host/device walk pools, scheduler (restricted to owned partitions)
and reshuffler.  The stages in :mod:`repro.core.stages` are reused
verbatim — one :class:`~repro.core.stages.StageContext` per shard.

What changes versus ``N`` independent engines is the walk frontier: a walk
stepping into another shard's partition range cannot be reshuffled locally.
The :class:`WalkMigrator` intercepts those walks after each kernel
(:meth:`ComputeDispatcher.dispatch` hands them over via ``ctx.router``) and
moves them over a :class:`~repro.gpu.cluster.PeerChannel`:

* the *send* occupies the source device's evict stream
  (``CAT_WALK_MIGRATE`` in the breakdown) starting no earlier than the
  kernel that produced the walks;
* the *link* is occupied for the transfer duration on the channel's own
  stream, which serializes concurrent migrations over the same directed
  device pair (different pairs overlap — the NVSwitch assumption);
* the *delivery* scatters the walks into the destination shard's device
  pool (reshuffle cost on the destination compute stream, starting no
  earlier than the payload's arrival) and records the arrival in
  ``frontier_ready`` so destination kernels never consume walks that are
  still in flight.

Elastic, heterogeneous, failable
--------------------------------
The cluster is no longer assumed homogeneous, reliable or statically
assigned:

* **Heterogeneity** — per-device :class:`~repro.gpu.cluster.ClusterDeviceSpec`
  scales each shard's kernel model, pool budgets and link bandwidth; the
  initial assignment weights partition bytes by each device's
  bottleneck capability (``ClusterDeviceSpec.assignment_weight``,
  gated by ``EngineConfig.heterogeneous_assignment``).
* **Topology** — migrations are routed by the cluster's
  :class:`~repro.gpu.cluster.Topology` (all-pairs, ring or switch); a
  route may relay over multiple channel hops, each serializing on its
  own stream.
* **Failure** — a :class:`~repro.core.config.FailureSchedule` kills
  devices at sweep boundaries; the dead shard's pending walks are
  drained and re-seeded onto survivors (``DeviceFailed`` /
  ``DeviceRecoveredWalks``), ownership is reassigned through the same
  byte-balanced :func:`~repro.gpu.cluster.assign_partitions`, and walk
  conservation is re-asserted immediately.
* **Elasticity** — a :class:`ClusterController` rides the metrics bus,
  detects compute-normalized pending-walk skew and hands partitions off
  between shards mid-run (``ShardRebalanced``), re-migrating their
  pending walks over the ordinary peer channels so the sanitizer's
  migration-conservation rule covers the rebalance path unchanged.

With ``devices=1`` no cluster state is active (no owned mask, no router)
and the iteration loop degenerates to exactly the single-device engine —
:mod:`tests.test_engine_parity` pins bit-identical :class:`RunStats`;
homogeneous no-failure multi-device runs are pinned the same way against
``tests/data/cluster_golden.json``.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import LightTrafficEngine
from repro.core.events import (
    DeviceFailed,
    DeviceRecoveredWalks,
    EventBus,
    IterationStarted,
    KernelDispatched,
    RunCompleted,
    ShardRebalanced,
    WalksDelivered,
    WalksMigrated,
    WalksSeeded,
)
from repro.core.scheduler import Scheduler
from repro.core.stages import (
    ComputeDispatcher,
    GraphServer,
    PreemptiveDispatcher,
    StageContext,
    WalkLoader,
)
from repro.core.stats import (
    CAT_RESHUFFLE,
    CAT_WALK_MIGRATE,
    RunStats,
    StatsCollector,
)
from repro.core.trace import TraceSubscriber
from repro.gpu.cluster import (
    DeviceCluster,
    PeerChannel,
    PeerLinkSpec,
    assign_partitions,
    homogeneous_specs,
    peer_link_by_name,
    topology_by_name,
)
from repro.gpu.kernels import DIRECT_WRITE, KernelModel
from repro.gpu.memory import BlockPool
from repro.gpu.timeline import TimeBreakdown, Timeline
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.reshuffle import (
    DirectWriteReshuffler,
    TwoLevelReshuffler,
    group_by_partition,
)
from repro.walks.state import WalkArrays

if TYPE_CHECKING:
    from repro.algorithms.base import RandomWalkAlgorithm
    from repro.core.config import EngineConfig
    from repro.graph.csr import CSRGraph


class _Shard:
    """One device's context plus its pipeline stage instances."""

    __slots__ = (
        "ctx",
        "graph_server",
        "loader",
        "compute",
        "preemptive",
        "alive",
    )

    def __init__(self, ctx: StageContext) -> None:
        self.ctx = ctx
        self.graph_server = GraphServer(ctx)
        self.loader = WalkLoader(ctx)
        self.compute = ComputeDispatcher(ctx)
        self.preemptive = PreemptiveDispatcher(ctx, self.compute)
        self.alive = True

    @property
    def pending(self) -> int:
        return self.ctx.host.total_walks + self.ctx.device.cached_walks


def _transit(
    hops: Tuple[PeerChannel, ...],
    nbytes: int,
    walks: int,
    send_start: float,
) -> float:
    """Carry one payload across the route's channel hops; returns arrival.

    Each hop's link is occupied in sequence (a relay cannot forward
    before it has received).  Conservation counters: every hop counts
    the payload as sent; relay hops also count it as delivered the
    moment it leaves them, so only the final hop's ``delivered_walks``
    waits for the actual pool delivery — per-channel ``sent ==
    delivered`` stays an invariant at run end under every topology.
    """
    arrival = send_start
    last = hops[-1]
    for hop in hops:
        __, arrival = hop.transfer(nbytes, earliest=arrival)
        hop.sent_walks += walks
        if hop is not last:
            hop.delivered_walks += walks
    return arrival


class WalkMigrator:
    """Routes post-kernel walks that left their shard over P2P channels.

    Installed as ``ctx.router`` on every shard context when ``devices > 1``;
    :meth:`ComputeDispatcher.dispatch` calls :meth:`route` with the
    surviving walks and their new partition ids before reshuffling.
    Routes come from the cluster topology and may span several channel
    hops (ring relays, an explicit switch); the send cost on the source
    evict stream is charged once, modeled on the first hop's link.
    """

    def __init__(self, cluster: DeviceCluster, shards: List[_Shard]) -> None:
        self.cluster = cluster
        self.shards = shards

    def route(
        self,
        ctx: StageContext,
        part_idx: int,
        active: WalkArrays,
        new_parts: np.ndarray,
        kernel_end: float,
    ) -> Tuple[WalkArrays, np.ndarray]:
        """Split ``active`` into (kept-local, migrated); returns the local part."""
        src = ctx.device_id
        dest = self.cluster.device_of[new_parts]
        local_mask = dest == src
        if bool(local_mask.all()):
            return active, new_parts
        cal = ctx.config.calibration
        # Ascending destination order keeps the send sequence — and with it
        # every downstream timestamp — deterministic.
        for dst in np.unique(dest[~local_mask]):
            dst = int(dst)
            sel = dest == dst
            payload = active.select(sel)
            parts = new_parts[sel]
            nbytes = len(payload) * ctx.bytes_per_walk
            hops = self.cluster.route(src, dst)
            send_t = (
                hops[0].spec.transfer_time(nbytes)
                + cal.scaled_memcpy_call_seconds
            )
            earliest = kernel_end
            if not ctx.config.pipeline:
                earliest = max(earliest, ctx.timeline.now)
            send_start, __ = ctx.timeline.evict.schedule(
                send_t, CAT_WALK_MIGRATE, earliest=earliest
            )
            # The first link is held while the source copy engine pushes
            # the payload; relay hops forward it as soon as it lands.
            arrival = _transit(hops, nbytes, len(payload), send_start)
            ctx.bus.emit(
                WalksMigrated(
                    src_device=src,
                    dst_device=dst,
                    walks=len(payload),
                    nbytes=nbytes,
                    seconds=send_t,
                )
            )
            self._deliver(src, dst, hops[-1], payload, parts, arrival)
        return active.select(local_mask), new_parts[local_mask]

    def _deliver(
        self,
        src: int,
        dst: int,
        chan: PeerChannel,
        payload: WalkArrays,
        parts: np.ndarray,
        arrival: float,
    ) -> None:
        """Scatter a migrated payload into the destination shard's pool.

        ``src``/``dst`` are the route's true endpoints — under multi-hop
        topologies the final hop's source is a relay, not the origin.
        """
        shard = self.shards[dst]
        dctx = shard.ctx
        cost, __ = dctx.reshuffler.reshuffle(dctx.device, payload, parts)
        ready = dctx.sched(dctx.timeline.compute, cost, CAT_RESHUFFLE, arrival)
        for p in np.unique(parts):
            p = int(p)
            prev = dctx.frontier_ready.get(p, 0.0)
            if ready > prev:
                dctx.frontier_ready[p] = ready
        chan.delivered_walks += len(payload)
        dctx.bus.emit(
            WalksDelivered(
                src_device=src,
                dst_device=dst,
                walks=len(payload),
                arrival=arrival,
            )
        )
        shard.compute.enforce_walk_capacity(protect=None)


class ClusterController:
    """Elastic load controller: watches the metrics bus, hands off shards.

    The controller subscribes to the engine's event bus (the PR-1
    metrics backbone): ``IterationStarted`` samples each shard's pending
    walks, ``KernelDispatched`` accumulates a per-device activity
    window.  At every sweep boundary the engine calls
    :meth:`maybe_rebalance`; when the most loaded alive shard's
    compute-normalized pending walks exceed ``rebalance_threshold``
    times the alive mean (and the cooldown has elapsed), ownership is
    recomputed from per-partition pending load through the shared
    byte-balanced :func:`~repro.gpu.cluster.assign_partitions`, and the
    changed partitions are handed off: pending walks drained from the
    old owner, re-migrated over the ordinary peer channels (so the
    sanitizer's migration-conservation rule audits the rebalance path
    unchanged) and appended to the new owner's host pool.
    """

    def __init__(
        self,
        cluster: DeviceCluster,
        shards: List[_Shard],
        threshold: float,
        cooldown: int,
        heterogeneous: bool,
        conservation_check: Callable[[], None],
    ) -> None:
        self.cluster = cluster
        self.shards = shards
        self.threshold = threshold
        self.cooldown = cooldown
        self.heterogeneous = heterogeneous
        self._assert_conservation = conservation_check
        #: bus-sampled pending walks per device (IterationStarted).
        self._pending: Dict[int, int] = {}
        #: walks computed per device since the last rebalance.
        self._window: Dict[int, int] = {}
        self._last_rebalance = 0
        self.rebalances = 0

    # -- event handlers (bound by EventBus.attach) ----------------------
    def on_iteration_started(self, event: IterationStarted) -> None:
        self._pending[event.device] = event.pending_walks

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        device = event.device
        self._window[device] = self._window.get(device, 0) + event.walks

    # ------------------------------------------------------------------
    def _normalized_loads(self) -> Dict[int, float]:
        """Compute-normalized pending load per alive device.

        The signal is the bus-sampled pending count; a shard that went
        idle stops emitting ``IterationStarted``, so its (stale) sample
        is clamped by the live pool count at the sweep boundary.
        """
        loads: Dict[int, float] = {}
        for shard in self.shards:
            if not shard.alive:
                continue
            device = shard.ctx.device_id
            sample = min(self._pending.get(device, 0), shard.pending)
            loads[device] = (
                sample / self.cluster.spec(device).assignment_weight
            )
        return loads

    def maybe_rebalance(self, iteration: int, bus: EventBus) -> bool:
        """Rebalance if skew warrants it; returns whether it happened."""
        if iteration - self._last_rebalance < self.cooldown:
            return False
        loads = self._normalized_loads()
        if len(loads) < 2:
            return False
        mean = sum(loads.values()) / len(loads)
        if mean <= 0.0 or max(loads.values()) <= self.threshold * mean:
            return False
        cluster = self.cluster
        shards = self.shards
        alive_ids = cluster.alive_devices()
        # Recompute ownership from *pending load* (+1 keeps drained
        # partitions spreadable), weighted by bottleneck capability.
        num_partitions = cluster.device_of.size
        counts = np.empty(num_partitions, dtype=np.int64)
        for p in range(num_partitions):
            counts[p] = (
                shards[cluster.owner(p)].ctx.partition_walks(p) + 1
            )
        weights = None
        if self.heterogeneous:
            weights = np.array(
                [cluster.spec(int(d)).assignment_weight for d in alive_ids],
                dtype=np.float64,
            )
        sub = assign_partitions(counts, len(alive_ids), weights=weights)
        new_owner = alive_ids[sub]
        moved = np.nonzero(new_owner != cluster.device_of)[0]
        self._last_rebalance = iteration
        self._window.clear()
        if moved.size == 0:
            return False
        walks_moved = 0
        for p in (int(x) for x in moved):
            src = cluster.owner(p)
            dst = int(new_owner[p])
            src_ctx = shards[src].ctx
            groups = src_ctx.release_partition(p)
            walks = sum(len(group) for group in groups)
            if walks == 0:
                continue
            walks_moved += walks
            nbytes = walks * src_ctx.bytes_per_walk
            hops = cluster.route(src, dst)
            send_t = (
                hops[0].spec.transfer_time(nbytes)
                + src_ctx.config.calibration.scaled_memcpy_call_seconds
            )
            # The handoff starts once the old owner's pipeline quiesces.
            send_start, __ = src_ctx.timeline.evict.schedule(
                send_t, CAT_WALK_MIGRATE, earliest=src_ctx.timeline.now
            )
            arrival = _transit(hops, nbytes, walks, send_start)
            bus.emit(
                WalksMigrated(
                    src_device=src,
                    dst_device=dst,
                    walks=walks,
                    nbytes=nbytes,
                    seconds=send_t,
                )
            )
            dctx = shards[dst].ctx
            for group in groups:
                dctx.host.append_walks(p, group)
            hops[-1].delivered_walks += walks
            prev = dctx.frontier_ready.get(p, 0.0)
            if arrival > prev:
                dctx.frontier_ready[p] = arrival
            bus.emit(
                WalksDelivered(
                    src_device=src,
                    dst_device=dst,
                    walks=walks,
                    arrival=arrival,
                )
            )
        cluster.set_owners(moved, new_owner[moved])
        for shard in shards:
            if shard.alive:
                shard.ctx.scheduler.set_owned(
                    cluster.owned_mask(shard.ctx.device_id)
                )
        bus.emit(
            ShardRebalanced(
                iteration=iteration,
                moved_partitions=int(moved.size),
                walks_moved=walks_moved,
            )
        )
        self.rebalances += 1
        self._assert_conservation()
        return True


class MultiDeviceEngine(LightTrafficEngine):
    """The LightTraffic engine sharded across ``config.devices`` devices."""

    def _build_shard(
        self,
        device_id: int,
        cluster: DeviceCluster,
        rng: Any,
        num_walks: int,
        bus: EventBus,
        backend: Any = None,
    ) -> _Shard:
        """One device's substrate; mirrors the single-device context."""
        cfg = self.config
        num_partitions = self.partitioned.num_partitions
        batch_cap = cfg.resolved_batch_walks()
        capacity = cfg.walk_pool_walks
        if capacity is None:
            capacity = max(num_walks, batch_cap)
        reshuffler_cls = (
            DirectWriteReshuffler
            if cfg.reshuffle_mode == DIRECT_WRITE
            else TwoLevelReshuffler
        )
        multi = cluster.num_devices > 1
        # Heterogeneity: scale this shard's cost model and memory budgets
        # by its capability spec.  The == 1.0 guards keep the homogeneous
        # path on the exact shared objects/ints (bit-identity).
        spec = cluster.spec(device_id)
        kernel_model = self.kernel_model
        if spec.compute_scale != 1.0:
            device = dataclass_replace(
                cfg.device,
                name=f"{cfg.device.name}-{spec.name}",
                clock_hz=cfg.device.clock_hz * spec.compute_scale,
                mem_bandwidth=cfg.device.mem_bandwidth * spec.compute_scale,
            )
            kernel_model = KernelModel(device, cfg.calibration)
        if spec.memory_scale != 1.0:
            capacity = max(batch_cap, int(capacity * spec.memory_scale))
        pool_partitions = cfg.graph_pool_partitions
        if spec.memory_scale != 1.0:
            pool_partitions = max(
                1, int(cfg.graph_pool_partitions * spec.memory_scale)
            )
        # link_scale covers the device's whole I/O complex: the host
        # interconnect carrying graph/walk DMA as well as the peer links
        # (which DeviceCluster.channel scales on its own).
        pcie = self.pcie
        ship_link = self.ship_link
        if spec.link_scale != 1.0:
            pcie = dataclass_replace(
                self.pcie,
                name=f"{self.pcie.name}x{spec.link_scale:g}",
                bandwidth=self.pcie.bandwidth * spec.link_scale,
                latency_seconds=self.pcie.latency_seconds / spec.link_scale,
            )
            ship_link = dataclass_replace(
                self.ship_link,
                name=f"{self.ship_link.name}x{spec.link_scale:g}",
                bandwidth=self.ship_link.bandwidth * spec.link_scale,
                latency_seconds=(
                    self.ship_link.latency_seconds / spec.link_scale
                ),
            )
        ctx = StageContext(
            config=cfg,
            graph=self.graph,
            algorithm=self.algorithm,
            pgraph=self.partitioned,
            rng=rng,
            scheduler=Scheduler(
                num_partitions,
                cfg.selective,
                cfg.preemptive,
                eviction_policy=cfg.eviction_policy,
                owned=cluster.owned_mask(device_id) if multi else None,
            ),
            host=HostWalkPool(num_partitions, batch_cap),
            device=DeviceWalkPool(num_partitions, batch_cap, capacity),
            graph_pool=BlockPool(
                pool_partitions,
                name=f"graph-pool-d{device_id}",
                track_recency=(cfg.eviction_policy == "lru"),
            ),
            timeline=Timeline(record_ops=cfg.record_ops),
            bus=bus,
            reshuffler=reshuffler_cls(
                kernel_model, num_partitions, backend=backend
            ),
            kernel_model=kernel_model,
            pcie=pcie,
            ship_link=ship_link,
            bytes_per_walk=self.algorithm.bytes_per_walk,
            adaptive=self.adaptive,
            device_id=device_id,
            cluster=cluster,
            backend=backend,
        )
        return _Shard(ctx)

    def _seed_shards(
        self,
        shards: List[_Shard],
        cluster: DeviceCluster,
        rng: Any,
        num_walks: int,
    ) -> None:
        """Seed every walk into the host pool of its start partition's owner."""
        starts = self.algorithm.start_vertices(self.graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, self.graph)
        backend = shards[0].ctx.backend
        if backend is not None:
            # All shards share one backend; precompute once from the full
            # seeded state before the walks are split across devices.
            backend.on_walks_seeded(walks)
        start_parts = self.partitioned.find_partitions(walks.vertices)
        groups = group_by_partition(walks, start_parts)
        for part, group in groups.items():
            shards[cluster.owner(part)].ctx.host.append_walks(part, group)
        shards[0].ctx.bus.emit(
            WalksSeeded(walks=num_walks, partitions=len(groups))
        )

    # ------------------------------------------------------------------
    def _assert_cluster_conservation(
        self, shards: List[_Shard], expected: int
    ) -> None:
        """Re-assert walk conservation after a cluster mutation.

        Failure recovery and elastic rebalance both move walks between
        pools outside the audited kernel/migration flow; every such
        mutation ends with this check so a lost or duplicated walk
        surfaces at the mutation that caused it, not at run end.
        """
        pending = sum(shard.pending for shard in shards)
        finished = sum(shard.ctx.finished for shard in shards)
        if pending + finished != expected:
            raise RuntimeError(
                f"walk conservation violated after cluster mutation: "
                f"{pending} pending + {finished} finished != {expected}"
            )

    def _fail_device(
        self,
        shards: List[_Shard],
        cluster: DeviceCluster,
        device: int,
        iteration: int,
        bus: EventBus,
        num_walks: int,
    ) -> None:
        """Kill one device shard and recover its walks onto survivors.

        The dead shard's pending walks are drained (there are no walks
        in flight between iterations — migration delivery is synchronous
        within a dispatch), its partitions reassigned over the alive
        devices through the shared byte-balanced assignment, survivors'
        owned masks refreshed, and the walks appended to the new owners'
        host pools.  ``DeviceFailed`` is emitted only after the cluster
        is consistent again, so auditing subscribers always observe a
        conserved population.
        """
        shard = shards[device]
        if not shard.alive:
            return
        cluster.fail_device(device)
        shard.alive = False
        moved = cluster.owned_partitions(device)
        drained = {
            int(p): shard.ctx.release_partition(int(p)) for p in moved
        }
        pending = sum(
            len(group) for groups in drained.values() for group in groups
        )
        alive_ids = cluster.alive_devices()
        sizes = np.asarray(
            self.partitioned.partition_sizes(), dtype=np.int64
        )
        # The dead device may own fewer partitions than there are
        # survivors; spread over the least-loaded ones in that case
        # (deterministic: load then device id).
        if moved.size < alive_ids.size:
            ranked = sorted(
                (
                    shards[int(d)].pending
                    / cluster.spec(int(d)).assignment_weight,
                    int(d),
                )
                for d in alive_ids
            )
            chosen = sorted(dev for __, dev in ranked[: moved.size])
            alive_ids = np.asarray(chosen, dtype=np.int64)
        weights = None
        if self.config.heterogeneous_assignment and any(
            cluster.spec(int(d)).assignment_weight != 1.0
            for d in alive_ids
        ):
            weights = np.array(
                [cluster.spec(int(d)).assignment_weight for d in alive_ids],
                dtype=np.float64,
            )
        sub = assign_partitions(
            sizes[moved], len(alive_ids), weights=weights
        )
        new_owners = alive_ids[sub]
        cluster.set_owners(moved, new_owners)
        for survivor in shards:
            if survivor.alive:
                survivor.ctx.scheduler.set_owned(
                    cluster.owned_mask(survivor.ctx.device_id)
                )
        recovered: Dict[int, List[int]] = {}
        for idx, p in enumerate(int(x) for x in moved):
            dst = int(new_owners[idx])
            walks = sum(len(group) for group in drained[p])
            for group in drained[p]:
                shards[dst].ctx.host.append_walks(p, group)
            entry = recovered.setdefault(dst, [0, 0])
            entry[0] += walks
            entry[1] += 1
        bus.emit(
            DeviceFailed(
                device=device,
                iteration=iteration,
                pending_walks=pending,
                partitions=int(moved.size),
            )
        )
        for dst in sorted(recovered):
            walks, partitions = recovered[dst]
            bus.emit(
                DeviceRecoveredWalks(
                    src_device=device,
                    dst_device=dst,
                    walks=walks,
                    partitions=partitions,
                )
            )
        self._assert_cluster_conservation(shards, num_walks)

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        """Run ``num_walks`` walks across the device shards."""
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        cfg = self.config
        num_devices = cfg.devices
        peer = cfg.peer_interconnect
        link = (
            peer
            if isinstance(peer, PeerLinkSpec)
            else peer_link_by_name(str(peer))
        )
        sizes = np.asarray(
            self.partitioned.partition_sizes(), dtype=np.int64
        )
        specs = (
            tuple(cfg.device_specs)
            if cfg.device_specs is not None
            else homogeneous_specs(num_devices)
        )
        topology = (
            topology_by_name(cfg.topology, num_devices)
            if num_devices > 1
            else None
        )
        weights = None
        if cfg.heterogeneous_assignment and any(
            spec.assignment_weight != 1.0 for spec in specs
        ):
            weights = np.array(
                [spec.assignment_weight for spec in specs],
                dtype=np.float64,
            )
        cluster = DeviceCluster(
            sizes,
            num_devices,
            link=link,
            record_ops=cfg.record_ops,
            specs=specs,
            topology=topology,
            assignment_weights=weights,
        )
        bus = self.bus if self.bus is not None else EventBus()
        rng = self._make_rng()
        # One backend shared by every shard: the kernels are partition-
        # local, so a single bound instance (and a single trajectory
        # precompute) serves all devices.
        backend = self._make_backend()
        shards = [
            self._build_shard(dev, cluster, rng, num_walks, bus, backend)
            for dev in range(num_devices)
        ]
        if num_devices > 1:
            migrator = WalkMigrator(cluster, shards)
            for shard in shards:
                shard.ctx.router = migrator

        stats = RunStats(
            system="lighttraffic",
            algorithm=self.algorithm.name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
            num_partitions=self.partitioned.num_partitions,
            num_devices=num_devices,
        )
        observers = [bus.attach(StatsCollector(stats, metrics=self.metrics))]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        if self.trace is not None:
            observers.append(bus.attach(TraceSubscriber(self.trace)))
        sanitizer = None
        if cfg.sanitize:
            from repro.analysis import Sanitizer

            sanitizer = Sanitizer()
            for shard in shards:
                sanitizer.bind_shard(
                    shard.ctx.device_id,
                    timeline=shard.ctx.timeline,
                    graph_pool=shard.ctx.graph_pool,
                    host=shard.ctx.host,
                    device=shard.ctx.device,
                    expected_walks=num_walks,
                )
            if num_devices > 1:
                sanitizer.bind_cluster(cluster)
            observers.append(bus.attach(sanitizer))
        controller = None
        if num_devices > 1 and cfg.rebalance_threshold is not None:
            controller = ClusterController(
                cluster,
                shards,
                threshold=cfg.rebalance_threshold,
                cooldown=cfg.rebalance_cooldown,
                heterogeneous=cfg.heterogeneous_assignment,
                conservation_check=(
                    lambda: self._assert_cluster_conservation(
                        shards, num_walks
                    )
                ),
            )
            observers.append(bus.attach(controller))
        pending_failures = (
            sorted(
                cfg.failure_schedule.failures,
                key=lambda f: (f.at_iteration, f.device),
            )
            if cfg.failure_schedule is not None and num_devices > 1
            else []
        )

        iteration = 0
        #: fractional dispatch credits of non-uniform shards (sweep-rate
        #: model); uniform shards never touch it.
        credits = [0.0] * num_devices
        try:
            self._seed_shards(shards, cluster, rng, num_walks)
            while any(shard.pending > 0 for shard in shards):
                # Sweep boundary: fire any device failure whose iteration
                # has come due before running further kernels.
                while (
                    pending_failures
                    and pending_failures[0].at_iteration <= iteration + 1
                ):
                    failure = pending_failures.pop(0)
                    self._fail_device(
                        shards,
                        cluster,
                        failure.device,
                        iteration,
                        bus,
                        num_walks,
                    )
                # One round-robin sweep: each shard with pending walks runs
                # pipeline iterations in proportion to its compute rate —
                # a 2x shard dispatches two partitions per sweep, a 0.5x
                # shard one every other sweep (whole credits are spent,
                # fractions carry over).  Uniform shards take the exact
                # historical one-iteration path.  Migration may hand walks
                # to a shard later in the sweep (processed the same sweep)
                # or earlier (picked up next sweep); the outer loop drains
                # until every shard is empty.
                for shard in shards:
                    ctx = shard.ctx
                    if not shard.alive or shard.pending == 0:
                        continue
                    rate = cluster.spec(ctx.device_id).compute_scale
                    if rate == 1.0:
                        rounds = 1
                    else:
                        credits[ctx.device_id] += rate
                        rounds = int(credits[ctx.device_id])
                        credits[ctx.device_id] -= rounds
                    for __ in range(rounds):
                        if shard.pending == 0:
                            break
                        iteration += 1
                        if (
                            cfg.max_iterations is not None
                            and iteration > cfg.max_iterations
                        ):
                            left = sum(s.pending for s in shards)
                            raise RuntimeError(
                                f"exceeded max_iterations="
                                f"{cfg.max_iterations} with {left} walks "
                                "left"
                            )
                        ctx.iteration = iteration
                        selected = ctx.scheduler.select_partition(
                            ctx.host, ctx.device
                        )
                        if selected is None:  # pragma: no cover
                            continue
                        bus.emit(
                            IterationStarted(
                                iteration,
                                selected,
                                ctx.partition_walks(selected),
                                device=ctx.device_id,
                            )
                        )
                        served = shard.graph_server.serve(selected)
                        shard.preemptive.fill(exclude=selected)
                        contents, batch_t = shard.loader.stream(selected)
                        frontier_t = ctx.frontier_ready.get(selected, 0.0)
                        if contents is not None:
                            shard.compute.dispatch(
                                selected,
                                contents,
                                earliest=max(
                                    served.ready_time, batch_t, frontier_t
                                ),
                                zero_copy=served.zero_copy,
                            )
                        shard.compute.dispatch(
                            selected,
                            ctx.device.pop_all(selected),
                            earliest=max(served.ready_time, frontier_t),
                            zero_copy=served.zero_copy,
                        )
                        # Everything delivered so far has been consumed;
                        # later deliveries re-arm the bound.
                        ctx.frontier_ready.pop(selected, None)
                if controller is not None:
                    controller.maybe_rebalance(iteration, bus)

            finished = sum(shard.ctx.finished for shard in shards)
            if finished != num_walks:
                raise RuntimeError(
                    f"walk conservation violated: finished {finished} "
                    f"of {num_walks}"
                )
            breakdown = TimeBreakdown()
            total_time = 0.0
            for shard in shards:
                breakdown.merge(shard.ctx.timeline.breakdown)
                total_time = max(
                    total_time, shard.ctx.timeline.total_time()
                )
            for stream in cluster.all_streams():
                total_time = max(total_time, stream.busy_until)
            bus.emit(
                RunCompleted(
                    total_time=total_time,
                    breakdown=breakdown.as_dict(),
                    graph_pool_hits=sum(
                        s.ctx.graph_pool.hits for s in shards
                    ),
                    graph_pool_misses=sum(
                        s.ctx.graph_pool.misses for s in shards
                    ),
                    finished_walks=finished,
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
            if sanitizer is not None:
                sanitizer.unbind()
                stats.sanitizer = sanitizer.summary()
            backend.close()
        stats.backend = cfg.backend
        stats.measured = backend.timings().as_dict()
        if num_devices > 1:
            stats.device_times = {
                str(shard.ctx.device_id): shard.ctx.timeline.total_time()
                for shard in shards
            }
        if cfg.record_ops:
            for shard in shards:
                shard.ctx.timeline.validate()
        self._timeline = shards[0].ctx.timeline
        self._timelines = [shard.ctx.timeline for shard in shards]
        self._cluster = cluster
        self._shards = shards
        return stats


def run_sharded(
    graph: "CSRGraph",
    algorithm: "RandomWalkAlgorithm",
    num_walks: int,
    config: "Optional[EngineConfig]" = None,
    devices: Optional[int] = None,
) -> RunStats:
    """One-call convenience: build a multi-device engine and run it."""
    from repro.core.config import EngineConfig

    config = config if config is not None else EngineConfig()
    if devices is not None:
        config = config.with_options(devices=devices)
    return MultiDeviceEngine(graph, algorithm, config).run(num_walks)
