"""Multi-device sharded engine with peer-to-peer walk migration.

:class:`MultiDeviceEngine` runs the LightTraffic pipeline on ``N``
simulated devices.  The range-partitioned graph is sharded contiguously
across the devices (:func:`repro.gpu.cluster.assign_partitions`), and each
shard owns the full single-device substrate: its own
:class:`~repro.gpu.timeline.Timeline` (compute/load/evict streams), graph
pool, host/device walk pools, scheduler (restricted to owned partitions)
and reshuffler.  The stages in :mod:`repro.core.stages` are reused
verbatim — one :class:`~repro.core.stages.StageContext` per shard.

What changes versus ``N`` independent engines is the walk frontier: a walk
stepping into another shard's partition range cannot be reshuffled locally.
The :class:`WalkMigrator` intercepts those walks after each kernel
(:meth:`ComputeDispatcher.dispatch` hands them over via ``ctx.router``) and
moves them over a :class:`~repro.gpu.cluster.PeerChannel`:

* the *send* occupies the source device's evict stream
  (``CAT_WALK_MIGRATE`` in the breakdown) starting no earlier than the
  kernel that produced the walks;
* the *link* is occupied for the transfer duration on the channel's own
  stream, which serializes concurrent migrations over the same directed
  device pair (different pairs overlap — the NVSwitch assumption);
* the *delivery* scatters the walks into the destination shard's device
  pool (reshuffle cost on the destination compute stream, starting no
  earlier than the payload's arrival) and records the arrival in
  ``frontier_ready`` so destination kernels never consume walks that are
  still in flight.

With ``devices=1`` no cluster state is active (no owned mask, no router)
and the iteration loop degenerates to exactly the single-device engine —
:mod:`tests.test_engine_parity` pins bit-identical :class:`RunStats`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from repro.core.engine import LightTrafficEngine
from repro.core.events import (
    EventBus,
    IterationStarted,
    RunCompleted,
    WalksDelivered,
    WalksMigrated,
    WalksSeeded,
)
from repro.core.scheduler import Scheduler
from repro.core.stages import (
    ComputeDispatcher,
    GraphServer,
    PreemptiveDispatcher,
    StageContext,
    WalkLoader,
)
from repro.core.stats import (
    CAT_RESHUFFLE,
    CAT_WALK_MIGRATE,
    RunStats,
    StatsCollector,
)
from repro.core.trace import TraceSubscriber
from repro.gpu.cluster import (
    DeviceCluster,
    PeerChannel,
    PeerLinkSpec,
    peer_link_by_name,
)
from repro.gpu.kernels import DIRECT_WRITE
from repro.gpu.memory import BlockPool
from repro.gpu.timeline import TimeBreakdown, Timeline
from repro.walks.pool import DeviceWalkPool, HostWalkPool
from repro.walks.reshuffle import (
    DirectWriteReshuffler,
    TwoLevelReshuffler,
    group_by_partition,
)
from repro.walks.state import WalkArrays

if TYPE_CHECKING:
    from repro.algorithms.base import RandomWalkAlgorithm
    from repro.core.config import EngineConfig
    from repro.graph.csr import CSRGraph


class _Shard:
    """One device's context plus its pipeline stage instances."""

    __slots__ = ("ctx", "graph_server", "loader", "compute", "preemptive")

    def __init__(self, ctx: StageContext) -> None:
        self.ctx = ctx
        self.graph_server = GraphServer(ctx)
        self.loader = WalkLoader(ctx)
        self.compute = ComputeDispatcher(ctx)
        self.preemptive = PreemptiveDispatcher(ctx, self.compute)

    @property
    def pending(self) -> int:
        return self.ctx.host.total_walks + self.ctx.device.cached_walks


class WalkMigrator:
    """Routes post-kernel walks that left their shard over P2P channels.

    Installed as ``ctx.router`` on every shard context when ``devices > 1``;
    :meth:`ComputeDispatcher.dispatch` calls :meth:`route` with the
    surviving walks and their new partition ids before reshuffling.
    """

    def __init__(self, cluster: DeviceCluster, shards: List[_Shard]) -> None:
        self.cluster = cluster
        self.shards = shards

    def route(
        self,
        ctx: StageContext,
        part_idx: int,
        active: WalkArrays,
        new_parts: np.ndarray,
        kernel_end: float,
    ) -> Tuple[WalkArrays, np.ndarray]:
        """Split ``active`` into (kept-local, migrated); returns the local part."""
        src = ctx.device_id
        dest = self.cluster.device_of[new_parts]
        local_mask = dest == src
        if bool(local_mask.all()):
            return active, new_parts
        cal = ctx.config.calibration
        # Ascending destination order keeps the send sequence — and with it
        # every downstream timestamp — deterministic.
        for dst in np.unique(dest[~local_mask]):
            dst = int(dst)
            sel = dest == dst
            payload = active.select(sel)
            parts = new_parts[sel]
            nbytes = len(payload) * ctx.bytes_per_walk
            chan = self.cluster.channel(src, dst)
            send_t = (
                chan.spec.transfer_time(nbytes)
                + cal.scaled_memcpy_call_seconds
            )
            earliest = kernel_end
            if not ctx.config.pipeline:
                earliest = max(earliest, ctx.timeline.now)
            send_start, __ = ctx.timeline.evict.schedule(
                send_t, CAT_WALK_MIGRATE, earliest=earliest
            )
            # The link is held while the source copy engine pushes the
            # payload; the channel stream serializes concurrent senders.
            __, arrival = chan.transfer(nbytes, earliest=send_start)
            chan.sent_walks += len(payload)
            ctx.bus.emit(
                WalksMigrated(
                    src_device=src,
                    dst_device=dst,
                    walks=len(payload),
                    nbytes=nbytes,
                    seconds=send_t,
                )
            )
            self._deliver(chan, payload, parts, arrival)
        return active.select(local_mask), new_parts[local_mask]

    def _deliver(
        self,
        chan: PeerChannel,
        payload: WalkArrays,
        parts: np.ndarray,
        arrival: float,
    ) -> None:
        """Scatter a migrated payload into the destination shard's pool."""
        shard = self.shards[chan.dst]
        dctx = shard.ctx
        cost, __ = dctx.reshuffler.reshuffle(dctx.device, payload, parts)
        ready = dctx.sched(dctx.timeline.compute, cost, CAT_RESHUFFLE, arrival)
        for p in np.unique(parts):
            p = int(p)
            prev = dctx.frontier_ready.get(p, 0.0)
            if ready > prev:
                dctx.frontier_ready[p] = ready
        chan.delivered_walks += len(payload)
        dctx.bus.emit(
            WalksDelivered(
                src_device=chan.src,
                dst_device=chan.dst,
                walks=len(payload),
                arrival=arrival,
            )
        )
        shard.compute.enforce_walk_capacity(protect=None)


class MultiDeviceEngine(LightTrafficEngine):
    """The LightTraffic engine sharded across ``config.devices`` devices."""

    def _build_shard(
        self,
        device_id: int,
        cluster: DeviceCluster,
        rng: Any,
        num_walks: int,
        bus: EventBus,
    ) -> _Shard:
        """One device's substrate; mirrors the single-device context."""
        cfg = self.config
        num_partitions = self.partitioned.num_partitions
        batch_cap = cfg.resolved_batch_walks()
        capacity = cfg.walk_pool_walks
        if capacity is None:
            capacity = max(num_walks, batch_cap)
        reshuffler_cls = (
            DirectWriteReshuffler
            if cfg.reshuffle_mode == DIRECT_WRITE
            else TwoLevelReshuffler
        )
        multi = cluster.num_devices > 1
        ctx = StageContext(
            config=cfg,
            graph=self.graph,
            algorithm=self.algorithm,
            pgraph=self.partitioned,
            rng=rng,
            scheduler=Scheduler(
                num_partitions,
                cfg.selective,
                cfg.preemptive,
                eviction_policy=cfg.eviction_policy,
                owned=cluster.owned_mask(device_id) if multi else None,
            ),
            host=HostWalkPool(num_partitions, batch_cap),
            device=DeviceWalkPool(num_partitions, batch_cap, capacity),
            graph_pool=BlockPool(
                cfg.graph_pool_partitions,
                name=f"graph-pool-d{device_id}",
                track_recency=(cfg.eviction_policy == "lru"),
            ),
            timeline=Timeline(record_ops=cfg.record_ops),
            bus=bus,
            reshuffler=reshuffler_cls(self.kernel_model, num_partitions),
            kernel_model=self.kernel_model,
            pcie=self.pcie,
            ship_link=self.ship_link,
            bytes_per_walk=self.algorithm.bytes_per_walk,
            adaptive=self.adaptive,
            device_id=device_id,
            cluster=cluster,
        )
        return _Shard(ctx)

    def _seed_shards(
        self,
        shards: List[_Shard],
        cluster: DeviceCluster,
        rng: Any,
        num_walks: int,
    ) -> None:
        """Seed every walk into the host pool of its start partition's owner."""
        starts = self.algorithm.start_vertices(self.graph, num_walks, rng)
        walks = WalkArrays.fresh(starts)
        self.algorithm.on_start(walks, self.graph)
        start_parts = self.partitioned.find_partitions(walks.vertices)
        groups = group_by_partition(walks, start_parts)
        for part, group in groups.items():
            shards[cluster.owner(part)].ctx.host.append_walks(part, group)
        shards[0].ctx.bus.emit(
            WalksSeeded(walks=num_walks, partitions=len(groups))
        )

    # ------------------------------------------------------------------
    def run(self, num_walks: int) -> RunStats:
        """Run ``num_walks`` walks across the device shards."""
        if num_walks < 1:
            raise ValueError("num_walks must be >= 1")
        cfg = self.config
        num_devices = cfg.devices
        peer = cfg.peer_interconnect
        link = (
            peer
            if isinstance(peer, PeerLinkSpec)
            else peer_link_by_name(str(peer))
        )
        sizes = np.asarray(
            self.partitioned.partition_sizes(), dtype=np.int64
        )
        cluster = DeviceCluster(
            sizes, num_devices, link=link, record_ops=cfg.record_ops
        )
        bus = self.bus if self.bus is not None else EventBus()
        rng = self._make_rng()
        shards = [
            self._build_shard(dev, cluster, rng, num_walks, bus)
            for dev in range(num_devices)
        ]
        if num_devices > 1:
            migrator = WalkMigrator(cluster, shards)
            for shard in shards:
                shard.ctx.router = migrator

        stats = RunStats(
            system="lighttraffic",
            algorithm=self.algorithm.name,
            graph=self.graph.name or "graph",
            num_walks=num_walks,
            num_partitions=self.partitioned.num_partitions,
            num_devices=num_devices,
        )
        observers = [bus.attach(StatsCollector(stats, metrics=self.metrics))]
        if self.metrics is not None:
            observers.append(bus.attach(self.metrics))
        if self.trace is not None:
            observers.append(bus.attach(TraceSubscriber(self.trace)))
        sanitizer = None
        if cfg.sanitize:
            from repro.analysis import Sanitizer

            sanitizer = Sanitizer()
            for shard in shards:
                sanitizer.bind_shard(
                    shard.ctx.device_id,
                    timeline=shard.ctx.timeline,
                    graph_pool=shard.ctx.graph_pool,
                    host=shard.ctx.host,
                    device=shard.ctx.device,
                    expected_walks=num_walks,
                )
            observers.append(bus.attach(sanitizer))

        iteration = 0
        try:
            self._seed_shards(shards, cluster, rng, num_walks)
            while any(shard.pending > 0 for shard in shards):
                # One round-robin sweep: each shard with pending walks runs
                # one pipeline iteration.  Migration may hand walks to a
                # shard later in the sweep (processed the same sweep) or
                # earlier (picked up next sweep); the outer loop drains
                # until every shard is empty.
                for shard in shards:
                    ctx = shard.ctx
                    if shard.pending == 0:
                        continue
                    iteration += 1
                    if (
                        cfg.max_iterations is not None
                        and iteration > cfg.max_iterations
                    ):
                        left = sum(s.pending for s in shards)
                        raise RuntimeError(
                            f"exceeded max_iterations={cfg.max_iterations} "
                            f"with {left} walks left"
                        )
                    ctx.iteration = iteration
                    selected = ctx.scheduler.select_partition(
                        ctx.host, ctx.device
                    )
                    if selected is None:  # pragma: no cover - pending > 0
                        continue
                    bus.emit(
                        IterationStarted(
                            iteration,
                            selected,
                            ctx.partition_walks(selected),
                            device=ctx.device_id,
                        )
                    )
                    served = shard.graph_server.serve(selected)
                    shard.preemptive.fill(exclude=selected)
                    contents, batch_t = shard.loader.stream(selected)
                    frontier_t = ctx.frontier_ready.get(selected, 0.0)
                    if contents is not None:
                        shard.compute.dispatch(
                            selected,
                            contents,
                            earliest=max(
                                served.ready_time, batch_t, frontier_t
                            ),
                            zero_copy=served.zero_copy,
                        )
                    shard.compute.dispatch(
                        selected,
                        ctx.device.pop_all(selected),
                        earliest=max(served.ready_time, frontier_t),
                        zero_copy=served.zero_copy,
                    )
                    # Everything delivered so far has been consumed; later
                    # deliveries re-arm the bound.
                    ctx.frontier_ready.pop(selected, None)

            finished = sum(shard.ctx.finished for shard in shards)
            if finished != num_walks:
                raise RuntimeError(
                    f"walk conservation violated: finished {finished} "
                    f"of {num_walks}"
                )
            breakdown = TimeBreakdown()
            total_time = 0.0
            for shard in shards:
                breakdown.merge(shard.ctx.timeline.breakdown)
                total_time = max(
                    total_time, shard.ctx.timeline.total_time()
                )
            for stream in cluster.all_streams():
                total_time = max(total_time, stream.busy_until)
            bus.emit(
                RunCompleted(
                    total_time=total_time,
                    breakdown=breakdown.as_dict(),
                    graph_pool_hits=sum(
                        s.ctx.graph_pool.hits for s in shards
                    ),
                    graph_pool_misses=sum(
                        s.ctx.graph_pool.misses for s in shards
                    ),
                    finished_walks=finished,
                )
            )
        finally:
            for observer in observers:
                bus.detach(observer)
            if sanitizer is not None:
                sanitizer.unbind()
                stats.sanitizer = sanitizer.summary()
        if num_devices > 1:
            stats.device_times = {
                str(shard.ctx.device_id): shard.ctx.timeline.total_time()
                for shard in shards
            }
        if cfg.record_ops:
            for shard in shards:
                shard.ctx.timeline.validate()
        self._timeline = shards[0].ctx.timeline
        self._timelines = [shard.ctx.timeline for shard in shards]
        self._cluster = cluster
        self._shards = shards
        return stats


def run_sharded(
    graph: "CSRGraph",
    algorithm: "RandomWalkAlgorithm",
    num_walks: int,
    config: "Optional[EngineConfig]" = None,
    devices: Optional[int] = None,
) -> RunStats:
    """One-call convenience: build a multi-device engine and run it."""
    from repro.core.config import EngineConfig

    config = config if config is not None else EngineConfig()
    if devices is not None:
        config = config.with_options(devices=devices)
    return MultiDeviceEngine(graph, algorithm, config).run(num_walks)
