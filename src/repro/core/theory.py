"""The paper's analytical performance model (§IV-D scalability analysis).

Under a tight memory budget where every iteration must transfer the graph
partition (size ``S_p``) plus the walk index of its ``w`` walks (``S_w``
each), and computation is fully hidden by the pipeline, one iteration takes
``(S_p + w*S_w) / B`` seconds and executes ``w`` steps.  Defining the walk
density ``D = w*S_w / S_p``:

    throughput = (B / S_w) / (1 + 1/D)

— independent of the graph size, which is the paper's scalability claim
(Fig 18).  Zero copy takes over when ``D < S_w / alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION


def walk_density(
    walks_per_partition: float, partition_bytes: int, walk_bytes: int = 8
) -> float:
    """The paper's ``D = w * S_w / S_p``."""
    if partition_bytes <= 0:
        raise ValueError("partition_bytes must be positive")
    if walks_per_partition < 0 or walk_bytes <= 0:
        raise ValueError("walk parameters must be positive")
    return walks_per_partition * walk_bytes / partition_bytes


def transfer_bound_throughput(
    bandwidth: float, walk_bytes: int, density: float
) -> float:
    """Steps/second lower-bound model: ``(B/S_w) / (1 + 1/D)``."""
    if bandwidth <= 0 or walk_bytes <= 0:
        raise ValueError("bandwidth and walk_bytes must be positive")
    if density <= 0:
        return 0.0
    return (bandwidth / walk_bytes) / (1.0 + 1.0 / density)


def throughput_ceiling(bandwidth: float, walk_bytes: int) -> float:
    """The D -> infinity asymptote ``B / S_w``."""
    return bandwidth / walk_bytes


def zero_copy_density_threshold(
    walk_bytes: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
    effective: bool = True,
) -> float:
    """Density below which zero copy engages: ``D < S_w / alpha``.

    ``effective=True`` uses the substrate-calibrated alpha (see
    ``Calibration.zero_copy_cost_factor``); ``False`` gives the paper's raw
    rule with alpha = 256 B.
    """
    alpha = calibration.zero_copy_alpha_bytes
    if effective:
        alpha *= calibration.zero_copy_cost_factor
    return walk_bytes / alpha


@dataclass(frozen=True)
class IterationModel:
    """Expected iteration structure of a fixed-length run.

    With range partitions of roughly equal edge mass and uniform neighbor
    choice, a walk stays in its current partition with probability ~1/P per
    step, so each partition *visit* advances the walk by
    ``1 / (1 - 1/P)`` steps in expectation, and a length-``l`` walk makes
    about ``l * (1 - 1/P)`` partition visits.
    """

    num_partitions: int
    walk_length: int

    def __post_init__(self) -> None:
        if self.num_partitions < 1 or self.walk_length < 1:
            raise ValueError("num_partitions and walk_length must be >= 1")

    @property
    def stay_probability(self) -> float:
        return 1.0 / self.num_partitions

    @property
    def steps_per_visit(self) -> float:
        if self.num_partitions == 1:
            return float(self.walk_length)
        return 1.0 / (1.0 - self.stay_probability)

    @property
    def visits_per_walk(self) -> float:
        return self.walk_length / self.steps_per_visit

    def expected_iterations(self, num_walks: int, walks_per_iteration: float) -> float:
        """Iterations to drain ``num_walks`` given per-iteration capacity."""
        if walks_per_iteration <= 0:
            raise ValueError("walks_per_iteration must be positive")
        return num_walks * self.visits_per_walk / walks_per_iteration
