"""Optional per-iteration engine tracing.

A :class:`TraceRecorder` attached to :class:`~repro.core.engine.LightTrafficEngine`
captures one record per iteration of Algorithm 2 — which partition was
selected, how its graph was served (cache hit / explicit copy / zero copy),
how many walks were computed, and how many of them came from preemptive
dispatches.  Traces power the per-iteration figures (Fig 3-style series for
LightTraffic itself) and make scheduler behaviour assertable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    import numpy as np

# Canonical serve-mode constants live with the event taxonomy; re-exported
# here because trace consumers historically import them from this module.
from repro.core.events import (  # noqa: F401  (re-export)
    SERVED_EXPLICIT,
    SERVED_HIT,
    SERVED_ZERO_COPY,
    BatchEvicted,
    GraphServed,
    KernelDispatched,
)


@dataclass
class IterationTrace:
    """One iteration of the engine's main loop."""

    iteration: int
    partition: int
    served: str
    walks_selected: int = 0
    walks_preempted: int = 0
    preempted_partitions: List[int] = field(default_factory=list)
    steps: int = 0
    evicted_batches: int = 0

    @property
    def walks_total(self) -> int:
        return self.walks_selected + self.walks_preempted


class TraceRecorder:
    """Collects :class:`IterationTrace` records during one engine run."""

    def __init__(self) -> None:
        self.iterations: List[IterationTrace] = []
        self._current: Optional[IterationTrace] = None

    # ------------------------------------------------------------------
    # Hooks called by the engine
    # ------------------------------------------------------------------
    def begin_iteration(
        self, iteration: int, partition: int, served: str
    ) -> None:
        if served not in (SERVED_HIT, SERVED_EXPLICIT, SERVED_ZERO_COPY):
            raise ValueError(f"unknown served mode {served!r}")
        self._current = IterationTrace(iteration, partition, served)
        self.iterations.append(self._current)

    def record_compute(
        self, partition: int, walks: int, steps: int, preemptive: bool
    ) -> None:
        if self._current is None:
            raise RuntimeError("record_compute outside an iteration")
        self._current.steps += steps
        if preemptive:
            self._current.walks_preempted += walks
            self._current.preempted_partitions.append(partition)
        else:
            self._current.walks_selected += walks

    def record_eviction(self, batches: int = 1) -> None:
        if self._current is None:
            raise RuntimeError("record_eviction outside an iteration")
        self._current.evicted_batches += batches

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def served_counts(self) -> dict:
        """How many iterations were served by each transfer mode."""
        counts = {SERVED_HIT: 0, SERVED_EXPLICIT: 0, SERVED_ZERO_COPY: 0}
        for it in self.iterations:
            counts[it.served] += 1
        return counts

    def preemption_fraction(self) -> float:
        """Fraction of computed walks dispatched preemptively."""
        total = sum(it.walks_total for it in self.iterations)
        if total == 0:
            return 0.0
        return sum(it.walks_preempted for it in self.iterations) / total

    def partition_visit_counts(self, num_partitions: int) -> "np.ndarray":
        """Per-partition selection frequency (hot-partition analysis)."""
        import numpy as np

        counts = np.zeros(num_partitions, dtype=np.int64)
        for it in self.iterations:
            counts[it.partition] += 1
        return counts

    def __len__(self) -> int:
        return len(self.iterations)


class TraceSubscriber:
    """Feeds a :class:`TraceRecorder` from event-bus subscriptions.

    The engine no longer calls the recorder's hooks directly; it emits
    typed events and this adapter (attached with ``bus.attach``) translates
    them.  :class:`~repro.core.events.GraphServed` opens the iteration
    record (it carries the served mode), kernel dispatches and batch
    evictions fill it in.
    """

    def __init__(self, trace: TraceRecorder) -> None:
        self.trace = trace

    def on_graph_served(self, event: GraphServed) -> None:
        self.trace.begin_iteration(
            event.iteration, event.partition, event.mode
        )

    def on_kernel_dispatched(self, event: KernelDispatched) -> None:
        self.trace.record_compute(
            event.partition, event.walks, event.steps, event.preemptive
        )

    def on_batch_evicted(self, event: BatchEvicted) -> None:
        self.trace.record_eviction()
