"""Run the same workload on every system in the repository.

One workload — 2|V| PageRank walks on the out-of-GPU-memory uk-sim dataset
— executed by LightTraffic and all five comparators (ThunderRW-, FlashMob-,
Subway-, NextDoor-, UVM-style), printing a side-by-side table.  A miniature
of the paper's whole evaluation section, using the same scaled platform as
the benchmark suite so fixed costs and pool sizes are proportionate.

Run:  python examples/compare_systems.py   (takes ~1 minute)
"""

from repro.algorithms import PageRank
from repro.baselines import (
    FlashMobEngine,
    SubwayConfig,
    SubwayEngine,
    ThunderRWEngine,
    UVMConfig,
    UVMEngine,
)
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine


def main() -> None:
    platform = default_platform()
    graph = load_dataset("uk-sim")
    walks = standard_walks(graph)
    print(
        f"graph: {graph} ({graph.csr_bytes / 1e6:.1f} MB CSR, scaled GPU "
        f"memory {platform.gpu_memory_bytes / 1e6:.1f} MB)\n"
        f"workload: {walks} PageRank walks of length 80\n"
    )

    def algo():
        return PageRank(length=80, restart_prob=0.15)

    runs = []
    for link in ("pcie3", "pcie4"):
        stats = LightTrafficEngine(
            graph, algo(), standard_config(graph, platform, interconnect=link)
        ).run(walks)
        stats.system = f"lighttraffic-{link}"
        runs.append(stats)
    runs.append(ThunderRWEngine(graph, algo(), cpu=platform.cpu).run(walks))
    runs.append(FlashMobEngine(graph, algo(), cpu=platform.cpu).run(walks))
    runs.append(
        SubwayEngine(
            graph,
            algo(),
            SubwayConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        ).run(walks)
    )
    # NextDoor needs the graph in GPU memory; uk-sim does not fit — exactly
    # the situation the paper's out-of-memory design addresses.
    print("nextdoor: skipped (graph exceeds GPU memory, as in the paper)\n")
    runs.append(
        UVMEngine(
            graph,
            algo(),
            UVMConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                page_bytes=4096,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        ).run(walks)
    )

    best = min(r.total_time for r in runs)
    print(f"{'system':20s} {'sim time':>12s} {'throughput':>14s} {'vs best':>9s}")
    for r in sorted(runs, key=lambda r: r.total_time):
        print(
            f"{r.system:20s} {r.total_time * 1e3:9.3f} ms "
            f"{r.throughput / 1e6:10.1f} M/s {r.total_time / best:8.2f}x"
        )


if __name__ == "__main__":
    main()
