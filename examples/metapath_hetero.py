"""Metapath walks on a heterogeneous graph (metapath2vec-style sampling).

The paper's introduction motivates random walk engines with graph
embedding workloads such as metapath2vec, which samples up to 1000|V|
walks over typed graphs.  This example builds an academic-style graph with
three vertex types (author / paper / venue) and samples walks constrained
to the classic author->paper->author metapath.

Run:  python examples/metapath_hetero.py
"""

import numpy as np

from repro import EngineConfig, generators, run_walks
from repro.algorithms import MetapathWalk

AUTHOR, PAPER, VENUE = 0, 1, 2
TYPE_NAMES = {AUTHOR: "author", PAPER: "paper", VENUE: "venue"}


def main() -> None:
    graph = generators.rmat(scale=12, edge_factor=10, seed=21, name="academic")
    rng = np.random.default_rng(5)
    # Type assignment: half papers, the rest split author/venue.
    vertex_types = rng.choice(
        [AUTHOR, PAPER, VENUE], size=graph.num_vertices, p=[0.4, 0.5, 0.1]
    )
    print(f"graph: {graph}")
    for t, name in TYPE_NAMES.items():
        print(f"  {name:6s}: {int((vertex_types == t).sum())} vertices")

    algo = MetapathWalk(
        vertex_types, metapath=[AUTHOR, PAPER, AUTHOR], length=20
    )
    config = EngineConfig(
        partition_bytes=32 * 1024,
        batch_walks=256,
        graph_pool_partitions=8,
        seed=77,
    )
    stats = run_walks(graph, algo, 20_000, config)
    print(stats.summary())
    print(
        f"  walks stopped early (no typed neighbor): "
        f"{algo.early_terminations}"
    )
    average_length = stats.total_steps / stats.num_walks
    print(f"  average walk length: {average_length:.1f} of {algo.length}")


if __name__ == "__main__":
    main()
