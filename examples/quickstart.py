"""Quickstart: run massive random walks on the simulated out-of-memory GPU.

Builds a scale-free graph, runs 2|V| PageRank walks with the LightTraffic
engine, and prints the run statistics — including the simulated CPU-GPU
traffic breakdown that the paper's design optimizes.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, PageRank, generators, run_walks


def main() -> None:
    # A synthetic social-network-like graph (power-law degrees).
    graph = generators.rmat(scale=12, edge_factor=8, seed=1, name="quickstart")
    print(f"graph: {graph}")

    # Pools far smaller than the graph: a genuinely out-of-memory setup.
    config = EngineConfig(
        partition_bytes=32 * 1024,   # graph partition (pool block) size
        batch_walks=256,             # walks per index batch
        graph_pool_partitions=8,     # m_g: partitions cached on the "GPU"
        walk_pool_walks=4096,        # m_w: walks cached on the "GPU"
        seed=42,
    )

    algorithm = PageRank(length=80, restart_prob=0.15)
    stats = run_walks(graph, algorithm, 2 * graph.num_vertices, config)

    print(stats.summary())
    print(f"  iterations        : {stats.iterations}")
    print(f"  graph partitions  : {stats.num_partitions}")
    print(f"  explicit copies   : {stats.explicit_copies}")
    print(f"  zero-copy iters   : {stats.zero_copy_iterations}")
    print(f"  pool hit rate     : {stats.graph_pool_hit_rate:.1%}")
    print(f"  walk batches      : {stats.walk_batches_loaded} loaded, "
          f"{stats.walk_batches_evicted} evicted")
    print("  simulated time breakdown:")
    for category, seconds in sorted(stats.breakdown.items()):
        print(f"    {category:15s} {seconds * 1e3:8.3f} ms")

    scores = algorithm.pagerank_scores()
    top = scores.argsort()[-5:][::-1]
    print("  top-5 PageRank vertices:", ", ".join(
        f"v{v} ({scores[v]:.4f})" for v in top
    ))


if __name__ == "__main__":
    main()
