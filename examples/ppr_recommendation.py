"""Friend recommendation with Personalized PageRank.

PPR is the paper's variable-length workload: all walks start at one source
vertex and stop with probability p per step, so visit frequencies rank
vertices by proximity to the source.  Recommending the top non-neighbor
vertices is the classic "people you may know" primitive (the Pixie-style
systems the paper's introduction motivates).

Run:  python examples/ppr_recommendation.py
"""

import numpy as np

from repro import EngineConfig, PersonalizedPageRank, generators, run_walks


def main() -> None:
    graph = generators.rmat(scale=13, edge_factor=10, seed=5, name="social")
    print(f"graph: {graph}")

    # Recommend for a mid-degree user (hubs are boring to personalize).
    degrees = graph.degrees()
    user = int(np.argsort(degrees)[graph.num_vertices // 2])
    print(f"user: v{user} with {degrees[user]} friends")

    algorithm = PersonalizedPageRank(source=user, stop_prob=0.15)
    config = EngineConfig(
        partition_bytes=32 * 1024,
        batch_walks=256,
        graph_pool_partitions=6,
        seed=11,
    )
    stats = run_walks(graph, algorithm, 50_000, config)
    print(stats.summary())
    print(f"zero-copy iterations (stragglers): {stats.zero_copy_iterations}")

    scores = algorithm.ppr_scores()
    friends = set(graph.neighbors(user).tolist()) | {user}
    ranked = [v for v in np.argsort(scores)[::-1] if int(v) not in friends]
    print("top-10 recommendations (closest non-friends):")
    for v in ranked[:10]:
        common = len(set(graph.neighbors(int(v)).tolist()) & friends)
        print(
            f"  v{int(v):<7} ppr={scores[v]:.5f}  mutual friends={common}"
        )


if __name__ == "__main__":
    main()
