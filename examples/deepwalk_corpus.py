"""Generate a DeepWalk training corpus with uniform sampling.

Graph embedding (DeepWalk/node2vec) is the paper's headline use case: run
|V|-scale fixed-length walks per epoch and feed the vertex sequences to a
skip-gram model.  This example produces one epoch of walks (with walk_id
attribution, as the paper's uniform-sampling walk index carries) plus a
second-order node2vec variant.

Run:  python examples/deepwalk_corpus.py
"""

import numpy as np

from repro import (
    EngineConfig,
    Node2Vec,
    UniformSampling,
    generators,
    run_walks,
)


def corpus_stats(paths: np.ndarray, graph) -> None:
    """Print corpus coverage statistics."""
    visited, counts = np.unique(paths, return_counts=True)
    coverage = visited.size / graph.num_vertices
    print(f"  corpus tokens     : {paths.size}")
    print(f"  vertex coverage   : {coverage:.1%}")
    print(f"  most frequent     : v{visited[np.argmax(counts)]} "
          f"({counts.max()} occurrences)")


def main() -> None:
    graph = generators.rmat(scale=11, edge_factor=8, seed=9, name="embed")
    print(f"graph: {graph}")
    config = EngineConfig(
        partition_bytes=16 * 1024,
        batch_walks=128,
        graph_pool_partitions=6,
        seed=33,
    )

    # --- one DeepWalk epoch: |V| walks of length 40 ---------------------
    walk_length = 40
    sampler = UniformSampling(length=walk_length, record_paths=True)
    stats = run_walks(graph, sampler, graph.num_vertices, config)
    print(stats.summary())
    corpus_stats(sampler.paths, graph)
    print("  sample walk:", " ".join(f"v{v}" for v in sampler.paths[0][:10]), "...")

    # --- node2vec walks (return-biased: p=0.5, q=2) ----------------------
    n2v = Node2Vec(length=walk_length, return_param=0.5, inout_param=2.0)
    stats = run_walks(graph, n2v, graph.num_vertices // 2, config)
    print(stats.summary())
    print(f"  (second-order bias handled via rejection sampling; "
          f"S_w = {n2v.bytes_per_walk} bytes/walk)")


if __name__ == "__main__":
    main()
