"""PageRank ranking of a synthetic web graph, Monte-Carlo vs power iteration.

The paper's PageRank workload estimates ranks from random walk visit
frequencies (random walk with restart).  This example checks the estimate
against the deterministic power-iteration reference — the estimated top
pages should essentially coincide.

Run:  python examples/pagerank_ranking.py
"""

import numpy as np

from repro import EngineConfig, PageRank, generators, run_walks
from repro.algorithms.pagerank import power_iteration_pagerank


def main() -> None:
    # A skewed "web graph": preferential attachment creates hub pages.
    graph = generators.barabasi_albert(2000, attach=4, seed=3, name="web")
    print(f"graph: {graph}, d_max={graph.max_degree}")

    algorithm = PageRank(length=60, restart_prob=0.15)
    config = EngineConfig(
        partition_bytes=16 * 1024,
        batch_walks=128,
        graph_pool_partitions=4,
        seed=7,
    )
    stats = run_walks(graph, algorithm, 4 * graph.num_vertices, config)
    print(stats.summary())

    estimated = algorithm.pagerank_scores()
    reference = power_iteration_pagerank(graph, damping=0.85)

    tv_distance = 0.5 * np.abs(estimated - reference).sum()
    print(f"total-variation distance vs power iteration: {tv_distance:.4f}")

    top_est = np.argsort(estimated)[-10:][::-1]
    top_ref = np.argsort(reference)[-10:][::-1]
    print(f"top-10 overlap: {len(set(top_est) & set(top_ref))}/10")
    print(f"{'rank':>4} {'walk estimate':>16} {'power iteration':>16}")
    for rank, (a, b) in enumerate(zip(top_est, top_ref), start=1):
        print(f"{rank:>4} v{a:<6} {estimated[a]:.5f}  v{b:<6} {reference[b]:.5f}")


if __name__ == "__main__":
    main()
