"""Explore the paper's design space: pools, scheduling, and copy modes.

Sweeps the LightTraffic knobs on one out-of-memory workload and prints the
simulated outcome of each configuration — a miniature version of the
paper's §IV-C/§IV-D sensitivity studies that is handy when tuning the
engine for a new graph.

Run:  python examples/memory_tuning.py
"""

from repro import EngineConfig, PageRank, generators, run_walks
from repro.core.config import COPY_ADAPTIVE, COPY_EXPLICIT, COPY_ZERO


def run(graph, label, **options):
    config = EngineConfig(
        partition_bytes=16 * 1024,
        batch_walks=128,
        seed=3,
        **options,
    )
    stats = run_walks(graph, PageRank(length=40), 2 * graph.num_vertices, config)
    print(
        f"{label:34s} time={stats.total_time * 1e3:8.3f} ms  "
        f"thr={stats.throughput / 1e6:7.1f} Msteps/s  "
        f"copies={stats.explicit_copies:5d}  hit={stats.graph_pool_hit_rate:5.1%}"
    )
    return stats


def main() -> None:
    graph = generators.rmat(scale=13, edge_factor=12, seed=2, name="tune")
    print(f"graph: {graph} ({graph.csr_bytes / 1e6:.1f} MB CSR)\n")

    print("-- graph pool size (m_g) --")
    for m_g in (4, 8, 16, 32):
        run(graph, f"m_g={m_g}", graph_pool_partitions=m_g)

    print("\n-- scheduling optimizations (m_g=16) --")
    for label, toggles in (
        ("baseline (round robin + FIFO)", dict(preemptive=False, selective=False)),
        ("preemptive only", dict(preemptive=True, selective=False)),
        ("selective only", dict(preemptive=False, selective=True)),
        ("preemptive + selective", dict(preemptive=True, selective=True)),
    ):
        run(graph, label, graph_pool_partitions=16, **toggles)

    print("\n-- copy modes (m_g=16) --")
    for label, mode in (
        ("all explicit copy", COPY_EXPLICIT),
        ("all zero copy", COPY_ZERO),
        ("adaptive (LightTraffic)", COPY_ADAPTIVE),
    ):
        run(graph, label, graph_pool_partitions=16, copy_mode=mode)


if __name__ == "__main__":
    main()
