"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` under
PEP 517; offline machines lacking ``wheel`` can fall back to the legacy
editable path (``pip install -e . --no-build-isolation --no-use-pep517``),
which this file enables.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
