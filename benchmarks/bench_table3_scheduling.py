"""Table III — impact of scheduling on data transmission (m_g = 100).

Paper: iterations 10670.8 -> 6673.8 (PS) / 10513.6 (SS) / 6103.8 (PS+SS);
explicit copies 8365.6 -> 4222.2 / 4176.6 / 2380.4; graph-pool hit rate
21.6% -> 36.7% / 60.3% / 61.0%.
"""

from repro.bench.harness import table3_scheduling
from repro.bench.reporting import render_table


def bench_table3_scheduling(run_once, show):
    rows = run_once(table3_scheduling)
    show(
        render_table(
            "Table III: scheduling impact on data transmission (m_g=100)",
            ["variant", "iterations", "explicit copies", "hit rate %"],
            [
                [
                    r["variant"],
                    r["iterations"],
                    r["explicit_copies"],
                    f"{r['hit_rate_pct']:.1f}",
                ]
                for r in rows
            ],
        )
    )
    by = {r["variant"]: r for r in rows}
    # Preemptive scheduling reduces iterations (it eliminates some).
    assert by["ps"]["iterations"] < 0.75 * by["baseline"]["iterations"]
    # Selective scheduling barely changes iterations but halves copies.
    assert by["ss"]["iterations"] > 0.9 * by["baseline"]["iterations"]
    assert by["ss"]["explicit_copies"] < 0.7 * by["baseline"]["explicit_copies"]
    assert by["ss"]["hit_rate_pct"] > 25.0
    # Combining both is the best on copies.
    assert by["ps+ss"]["explicit_copies"] == min(
        r["explicit_copies"] for r in rows
    )
