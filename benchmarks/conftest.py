"""Shared benchmark fixtures.

Each bench runs its experiment exactly once (``rounds=1``) — the harness
functions are full experiment sweeps, not micro-benchmarks — and prints the
paper-style table through ``capsys.disabled()`` so it is visible in the
teed output without ``-s``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a harness function once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


@pytest.fixture
def show(capsys):
    """Print a rendered table even under captured output."""

    def printer(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return printer
