"""Fig 10 — comparison with the out-of-memory GPU system Subway.

Paper shape: order-of-magnitude total-time speedups (39.1x/26.9x PageRank,
22.3x/54.7x PPR on FS/UK), driven mostly by transmission (+ subgraph
creation) savings.
"""

from repro.bench.harness import fig10_subway_comparison
from repro.bench.reporting import render_table


def bench_fig10_subway(run_once, show):
    rows = run_once(fig10_subway_comparison)
    show(
        render_table(
            "Fig 10: LightTraffic speedup over Subway",
            ["dataset", "algorithm", "total", "computing", "transmission"],
            [
                [
                    r["dataset"],
                    r["algorithm"],
                    f"{r['total_speedup']:.1f}x",
                    f"{r['compute_speedup']:.2f}x",
                    f"{r['transmission_speedup']:.1f}x",
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # LightTraffic wins by a large factor in total time everywhere.
        assert r["total_speedup"] > 3.0
        assert r["transmission_speedup"] > 1.0
    assert max(r["total_speedup"] for r in rows) > 10.0
