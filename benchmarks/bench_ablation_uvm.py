"""Ablation — unified virtual memory vs LightTraffic's explicit transfers.

The paper's related work (§V) covers UVM-based out-of-memory processing
(Grus; Gera et al.); the reason LightTraffic partitions and schedules
explicitly is that fault-driven page migration cannot be hidden and moves
whole pages for sparse accesses.  This bench quantifies that on the
streaming-bound dataset: UVM should lose clearly when the graph exceeds
device memory (page cache thrashes) and be competitive when it fits.
"""

from repro.baselines import UVMConfig, UVMEngine
from repro.bench.harness import make_algorithm
from repro.bench.reporting import format_seconds, render_table
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine


def run_sweep():
    platform = default_platform()
    rows = []
    for dataset in ("fs-sim", "uk-sim"):
        graph = load_dataset(dataset)
        walks = standard_walks(graph)
        lt = LightTrafficEngine(
            graph,
            make_algorithm("pagerank"),
            standard_config(graph, platform),
        ).run(walks)
        uvm_engine = UVMEngine(
            graph,
            make_algorithm("pagerank"),
            UVMConfig(
                device=platform.device,
                interconnect=platform.pcie3,
                calibration=platform.calibration,
                page_bytes=4096,
                gpu_memory_bytes=platform.gpu_memory_bytes,
            ),
        )
        uvm = uvm_engine.run(walks)
        rows.append(
            {
                "dataset": dataset,
                "fits_gpu": graph.csr_bytes <= platform.gpu_memory_bytes,
                "uvm_time": uvm.total_time,
                "lt_time": lt.total_time,
                "uvm_fault_rate": uvm_engine.fault_rate,
                "lt_speedup": uvm.total_time / lt.total_time,
            }
        )
    return rows


def bench_ablation_uvm(run_once, show):
    rows = run_once(run_sweep)
    show(
        render_table(
            "Ablation: UVM page faulting vs LightTraffic (PageRank)",
            ["dataset", "fits GPU", "UVM time", "LT time", "UVM fault rate",
             "LT speedup"],
            [
                [
                    r["dataset"],
                    "yes" if r["fits_gpu"] else "no",
                    format_seconds(r["uvm_time"]),
                    format_seconds(r["lt_time"]),
                    f"{r['uvm_fault_rate']:.1%}",
                    f"{r['lt_speedup']:.2f}x",
                ]
                for r in rows
            ],
        )
    )
    by = {r["dataset"]: r for r in rows}
    # Out-of-memory graph: the UVM page cache thrashes and LT wins clearly.
    assert by["uk-sim"]["uvm_fault_rate"] > 0.5
    assert by["uk-sim"]["lt_speedup"] > 1.5
    # In-memory graph: pages are faulted once then reused — UVM close to LT.
    assert by["fs-sim"]["uvm_fault_rate"] < 0.5
    assert by["fs-sim"]["lt_speedup"] < by["uk-sim"]["lt_speedup"]
