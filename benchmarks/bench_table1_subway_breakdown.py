"""Table I — time breakdown of random walks on GPU with the Subway baseline.

Paper: UK = 11.2% computation / 40.4% transmission / 48.4% subgraph
creation; FS = 2.0% / 43.7% / 54.3%.
"""

from repro.bench.harness import table1_subway_breakdown
from repro.bench.reporting import render_table


def bench_table1_subway_breakdown(run_once, show):
    rows = run_once(table1_subway_breakdown)
    show(
        render_table(
            "Table I: Subway time breakdown",
            ["dataset", "computation %", "transmission %", "subgraph creation %"],
            [
                [
                    r["dataset"],
                    f"{r['computation_pct']:.1f}",
                    f"{r['transmission_pct']:.1f}",
                    f"{r['subgraph_pct']:.1f}",
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # Subgraph creation dominates, transmission second, compute smallest.
        assert r["subgraph_pct"] > r["transmission_pct"] > r["computation_pct"]
        assert r["subgraph_pct"] > 40.0
        assert r["computation_pct"] < 20.0
