"""Ablation — interconnect generations (§IV-B outlook).

The paper measures PCIe 3.0 vs PCIe 4.0 and notes NVLink 2.0-class links
(64 GB/s) as the opportunity for further gains.  Since LightTraffic is
transfer-bound on graphs that exceed GPU memory, throughput should climb
with link bandwidth but sublinearly (scheduling already hides part of the
traffic), and on a graph that *fits* in GPU memory the link should barely
matter.
"""

from repro.bench.harness import make_algorithm
from repro.bench.reporting import format_rate, render_table
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine


def run_sweep():
    platform = default_platform()
    rows = []
    for dataset in ("fs-sim", "uk-sim"):
        graph = load_dataset(dataset)
        walks = standard_walks(graph)
        for link in ("pcie3", "pcie4", "nvlink2"):
            config = standard_config(graph, platform, interconnect=link)
            stats = LightTrafficEngine(
                graph, make_algorithm("pagerank"), config
            ).run(walks)
            rows.append(
                {
                    "dataset": dataset,
                    "link": link,
                    "throughput": stats.throughput,
                    "total_time": stats.total_time,
                }
            )
    return rows


def bench_ablation_interconnect(run_once, show):
    rows = run_once(run_sweep)
    show(
        render_table(
            "Ablation: interconnect bandwidth (PageRank)",
            ["dataset", "link", "throughput", "total time (s)"],
            [
                [
                    r["dataset"],
                    r["link"],
                    format_rate(r["throughput"]),
                    f"{r['total_time']:.4g}",
                ]
                for r in rows
            ],
        )
    )
    by = {(r["dataset"], r["link"]): r["throughput"] for r in rows}
    # Out-of-memory graph: faster links help substantially...
    assert by[("uk-sim", "pcie4")] > 1.3 * by[("uk-sim", "pcie3")]
    assert by[("uk-sim", "nvlink2")] > by[("uk-sim", "pcie4")]
    # ...while a GPU-resident graph barely notices the link.
    assert by[("fs-sim", "pcie4")] < 1.5 * by[("fs-sim", "pcie3")]
