"""Fig 17 — walk computing time breakdown vs partition size.

Paper shape: walk *updating* time grows with partition size (poorer
locality of memory references), walk *reshuffling* time shrinks (fewer
partitions -> cheaper search and fewer random writes); partition size is
not a very sensitive parameter overall.
"""

from repro.bench.harness import fig17_partition_size
from repro.bench.reporting import format_seconds, render_table


def bench_fig17_partition_size(run_once, show):
    rows = run_once(fig17_partition_size)
    show(
        render_table(
            "Fig 17: walk computing breakdown vs partition size",
            [
                "partition KiB",
                "partitions",
                "walk updating",
                "walk reshuffling",
                "others",
                "computing total",
            ],
            [
                [
                    r["partition_kib"],
                    r["num_partitions"],
                    format_seconds(r["walk_updating"]),
                    format_seconds(r["walk_reshuffling"]),
                    format_seconds(r["others"]),
                    format_seconds(r["computing_total"]),
                ]
                for r in rows
            ],
        )
    )
    rows = sorted(rows, key=lambda r: r["partition_kib"])
    # Updating: worse locality with large partitions.
    assert rows[-1]["walk_updating"] > rows[0]["walk_updating"] * 0.95
    # Reshuffling: cheaper with fewer partitions.
    assert rows[-1]["walk_reshuffling"] < rows[0]["walk_reshuffling"]
    # Not a very sensitive parameter overall (within ~3x end to end).
    totals = [r["computing_total"] for r in rows]
    assert max(totals) / min(totals) < 3.0
