"""Ablation — graph-pool eviction policies (FIFO / LRU / min-walks).

The paper's selective scheduling evicts the cached partition with the
fewest walks; this ablation compares it with the classic alternatives to
show the policy is doing real work (LRU approximates it, plain FIFO
thrashes under the selection pattern).
"""

from repro.bench.harness import make_algorithm
from repro.bench.reporting import format_seconds, render_table
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine


def run_sweep():
    platform = default_platform()
    graph = load_dataset("uk-sim")
    walks = standard_walks(graph)
    rows = []
    for policy in ("fifo", "lru", "min_walks"):
        config = standard_config(
            graph,
            platform,
            graph_pool_partitions=100,
            copy_mode="explicit",
            eviction_policy=policy,
        )
        stats = LightTrafficEngine(
            graph, make_algorithm("pagerank"), config
        ).run(walks)
        rows.append(
            {
                "policy": policy,
                "total_time": stats.total_time,
                "explicit_copies": stats.explicit_copies,
                "hit_rate": stats.graph_pool_hit_rate,
            }
        )
    return rows


def bench_ablation_eviction(run_once, show):
    rows = run_once(run_sweep)
    show(
        render_table(
            "Ablation: graph-pool eviction policy (uk-sim, m_g=100)",
            ["policy", "total time", "explicit copies", "hit rate"],
            [
                [
                    r["policy"],
                    format_seconds(r["total_time"]),
                    r["explicit_copies"],
                    f"{r['hit_rate']:.1%}",
                ]
                for r in rows
            ],
        )
    )
    by = {r["policy"]: r for r in rows}
    # The paper's min-walks policy transfers the least.
    assert by["min_walks"]["explicit_copies"] <= by["fifo"]["explicit_copies"]
    assert by["min_walks"]["total_time"] <= by["fifo"]["total_time"] * 1.05
