"""Fig 14 — adaptive scheduling with zero copy (straggler handling).

Paper shape: adaptive scheduling beats both all-explicit and all-zero-copy;
the benefit is larger for PPR (variable walk lengths make stragglers more
severe).
"""

from repro.bench.harness import fig14_adaptive
from repro.bench.reporting import render_table


def bench_fig14_adaptive(run_once, show):
    rows = run_once(fig14_adaptive)
    show(
        render_table(
            "Fig 14: speedup over All-Explicit-Copy",
            ["dataset", "algorithm", "all zero copy", "adaptive"],
            [
                [
                    r["dataset"],
                    r["algorithm"],
                    f"{r['zero_copy_speedup']:.2f}x",
                    f"{r['adaptive_speedup']:.2f}x",
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # Adaptive never loses to explicit-only, and beats (or matches)
        # zero-copy-only by balancing the trade-off.
        assert r["adaptive_speedup"] >= 0.97
        assert r["adaptive_speedup"] >= r["zero_copy_speedup"] * 0.97
    # The benefit exists and is larger for PPR than PageRank on average.
    ppr = [r["adaptive_speedup"] for r in rows if r["algorithm"] == "ppr"]
    pr = [r["adaptive_speedup"] for r in rows if r["algorithm"] == "pagerank"]
    assert max(ppr) > 1.1
    assert sum(ppr) / len(ppr) >= sum(pr) / len(pr) * 0.95
