"""Table II — dataset statistics (synthetic twins vs paper datasets)."""

from repro.bench.harness import table2_dataset_stats
from repro.bench.reporting import render_table


def bench_table2_datasets(run_once, show):
    rows = run_once(table2_dataset_stats)
    show(
        render_table(
            "Table II: graph datasets (synthetic twins of the paper's)",
            [
                "dataset",
                "paper",
                "|V|",
                "|E|",
                "CSR MB",
                "d_max",
                "paper |V|",
                "paper |E|",
                "paper CSR GB",
                "scale",
            ],
            [
                [
                    r["dataset"],
                    r["paper"],
                    r["V"],
                    r["E"],
                    f"{r['csr_mb']:.2f}",
                    r["d_max"],
                    f"{r['paper_V']:.3g}",
                    f"{r['paper_E']:.3g}",
                    r["paper_csr_gb"],
                    f"{r['scale']:.0f}x",
                ]
                for r in rows
            ],
        )
    )
    assert len(rows) == 7
    by_name = {r["dataset"]: r for r in rows}
    # Size ordering mirrors the paper: CW has the most vertices, UK/YH/CW
    # are the byte-largest graphs.
    assert by_name["cw-sim"]["V"] == max(r["V"] for r in rows)
    assert by_name["lj-sim"]["csr_mb"] == min(r["csr_mb"] for r in rows)
    # YH carries the paper's |V|-degree hub.
    assert by_name["yh-sim"]["d_max"] == by_name["yh-sim"]["V"] - 1
