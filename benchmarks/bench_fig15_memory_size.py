"""Fig 15 — running time / per-op breakdown vs GPU memory pool sizes.

Paper shape: the total time is close to max(computing stage, loading
stage) thanks to the pipeline; with a fixed number of cached partitions,
caching more walks significantly cuts total time.
"""

from repro.bench.harness import fig15_memory_size
from repro.bench.reporting import format_seconds, render_table


def bench_fig15_memory_size(run_once, show):
    rows = run_once(fig15_memory_size)
    show(
        render_table(
            "Fig 15: per-op time vs pool sizes (PageRank, l=10)",
            [
                "partitions",
                "walks cached",
                "graph load",
                "walk load",
                "zero copy",
                "walk evict",
                "computing",
                "total",
            ],
            [
                [
                    r["cached_partitions"],
                    r["cached_walks"],
                    format_seconds(r["graph_load"]),
                    format_seconds(r["walk_load"]),
                    format_seconds(r["zero_copy"]),
                    format_seconds(r["walk_evict"]),
                    format_seconds(r["computing"]),
                    format_seconds(r["total_time"]),
                ]
                for r in rows
            ],
        )
    )
    by = {(r["cached_partitions"], r["cached_walks"]): r for r in rows}
    partitions = sorted({r["cached_partitions"] for r in rows})
    walks = sorted({r["cached_walks"] for r in rows})
    for m_g in partitions:
        # More cached walks => less (or equal) total time, as in the paper's
        # 12.8s -> 7.1s example at 25 cached partitions.
        small = by[(m_g, walks[0])]["total_time"]
        large = by[(m_g, walks[-1])]["total_time"]
        assert large <= small * 1.05
    for r in rows:
        # Pipeline effectiveness: total is below the serial sum of stages.
        loading = (
            r["graph_load"] + r["walk_load"] + r["zero_copy"] + r["walk_evict"]
        )
        assert r["total_time"] <= (loading + r["computing"]) * 1.001
        assert r["total_time"] >= max(loading, r["computing"]) * 0.50
