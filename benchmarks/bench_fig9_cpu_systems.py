"""Fig 9 — throughput vs the CPU systems FlashMob and ThunderRW.

Paper shape (PCIe 4.0): LightTraffic wins 1.7-5.0x over FlashMob and
1.4-12.8x over ThunderRW; FlashMob has no PPR (fixed-length walks only);
LightTraffic's margin is largest on graphs that fit GPU memory and smallest
where the graph must stream (UK-class).
"""

import math

from repro.bench.harness import fig9_cpu_comparison, fig9_speedups
from repro.bench.reporting import format_rate, render_table


def bench_fig9_cpu_systems(run_once, show):
    rows = run_once(fig9_cpu_comparison)
    show(
        render_table(
            "Fig 9: throughput (steps/s) vs CPU systems",
            ["dataset", "algorithm", "system", "throughput", "total time (s)"],
            [
                [
                    r["dataset"],
                    r["algorithm"],
                    r["system"],
                    format_rate(r["throughput"]) if r["available"] else "n/a",
                    f"{r['total_time']:.4g}" if r["available"] else "n/a",
                ]
                for r in rows
            ],
        )
    )
    speedups = fig9_speedups(rows)
    show(
        render_table(
            "Fig 9 (derived): LT(PCIe4) speedup over CPU systems",
            ["dataset", "algorithm", "vs", "speedup"],
            [
                [r["dataset"], r["algorithm"], r["vs"], f"{r['speedup']:.2f}x"]
                for r in speedups
            ],
        )
    )
    # FlashMob has no PPR numbers (fixed-length only, as in the paper).
    ppr_fm = [
        r
        for r in rows
        if r["algorithm"] == "ppr" and r["system"] == "flashmob"
    ]
    assert ppr_fm and all(not r["available"] for r in ppr_fm)
    # LightTraffic (PCIe4) beats both CPU systems on every fixed-length cell.
    fixed = [s for s in speedups if s["algorithm"] in ("uniform", "pagerank")]
    assert fixed
    assert all(s["speedup"] > 1.0 for s in fixed)
    fm = [s["speedup"] for s in fixed if s["vs"] == "flashmob"]
    trw = [s["speedup"] for s in fixed if s["vs"] == "thunderrw"]
    # Windows comparable to the paper's 1.7-5.0x / 1.4-12.8x.
    assert 1.2 < min(fm) and max(fm) < 10.0
    assert 1.2 < min(trw) and max(trw) < 16.0
    # PPR: the benefit shrinks (variable lengths) but LT still wins on
    # average (paper: ~2.0x average over the CPU systems).
    ppr = [s["speedup"] for s in speedups if s["algorithm"] == "ppr"]
    assert ppr
    assert sum(ppr) / len(ppr) > 1.0
    assert min(ppr) > 0.5
    # PCIe4 never loses to PCIe3 (higher bandwidth).
    by_key = {}
    for r in rows:
        by_key.setdefault((r["dataset"], r["algorithm"]), {})[r["system"]] = r
    for group in by_key.values():
        assert (
            group["lt-pcie4"]["throughput"]
            >= group["lt-pcie3"]["throughput"] * 0.999
        )
