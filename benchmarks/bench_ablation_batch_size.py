"""Ablation — walk-batch size (§III-B sets it to 16x the GPU core count).

The batch is the transfer/compute granularity of the walk index.  Too small
and fixed per-batch costs dominate; too large and frontiers never complete,
which starves preemptive scheduling (no ready batches while loads are in
flight).  This ablation sweeps the batch size around the standard setting
and reports total time plus the preemption-visible signals.
"""

from repro.bench.harness import make_algorithm
from repro.bench.reporting import format_seconds, render_table
from repro.bench.workloads import (
    default_platform,
    load_dataset,
    standard_config,
    standard_walks,
)
from repro.core.engine import LightTrafficEngine


def run_sweep():
    platform = default_platform()
    graph = load_dataset("uk-sim")
    walks = standard_walks(graph)
    rows = []
    for batch in (32, 64, 128, 512, 2048):
        config = standard_config(graph, platform, batch_walks=batch)
        stats = LightTrafficEngine(
            graph, make_algorithm("pagerank"), config
        ).run(walks)
        rows.append(
            {
                "batch_walks": batch,
                "total_time": stats.total_time,
                "iterations": stats.iterations,
                "explicit_copies": stats.explicit_copies,
                "hit_rate": stats.graph_pool_hit_rate,
            }
        )
    return rows


def bench_ablation_batch_size(run_once, show):
    rows = run_once(run_sweep)
    show(
        render_table(
            "Ablation: walk-batch size (uk-sim, PageRank)",
            ["batch walks", "total time", "iterations", "copies", "hit rate"],
            [
                [
                    r["batch_walks"],
                    format_seconds(r["total_time"]),
                    r["iterations"],
                    r["explicit_copies"],
                    f"{r['hit_rate']:.1%}",
                ]
                for r in rows
            ],
        )
    )
    by = {r["batch_walks"]: r for r in rows}
    # Oversized batches starve preemption: fewer cache hits, more copies.
    assert by[2048]["hit_rate"] < by[64]["hit_rate"]
    assert by[2048]["explicit_copies"] > by[64]["explicit_copies"]
    # A mid-range batch is at least as good as the extremes.
    best = min(r["total_time"] for r in rows)
    assert min(by[64]["total_time"], by[128]["total_time"]) <= best * 1.25
