"""Fig 18 — scalability vs walk density under a tight memory budget.

Paper shape: with pools restricted to a fixed small size, throughput
depends on the walk density D (theory: (B/S_w) / (1 + 1/D)) and *not* on
the graph size — measured curves for a small and a large graph both track
the theoretical estimate.
"""

import math

from repro.bench.harness import fig18_scalability
from repro.bench.reporting import format_rate, render_table
from repro.bench.sparkline import series_line


def bench_fig18_scalability(run_once, show):
    rows = run_once(fig18_scalability)
    show(
        render_table(
            "Fig 18: throughput vs walk density (restricted pools)",
            ["dataset", "density D", "walks", "measured", "theory"],
            [
                [
                    r["dataset"],
                    f"{r['density']:.4g}",
                    r["num_walks"],
                    format_rate(r["throughput"]),
                    format_rate(r["theory_throughput"]),
                ]
                for r in rows
            ],
        )
    )
    by_dataset = {}
    for r in rows:
        by_dataset.setdefault(r["dataset"], []).append(r)
    for name, series in sorted(by_dataset.items()):
        ordered = sorted(series, key=lambda r: r["density"])
        show(series_line(
            f"{name} measured vs density",
            [r["throughput"] for r in ordered],
        ))
    for series in by_dataset.values():
        series.sort(key=lambda r: r["density"])
        measured = [r["throughput"] for r in series]
        # Monotone: higher walk density => higher throughput.
        assert all(b >= a * 0.8 for a, b in zip(measured, measured[1:]))
        # Tracks theory within an order of magnitude at every point.
        for r in series:
            ratio = r["throughput"] / r["theory_throughput"]
            assert 0.1 < ratio < 10.0
    # Graph-size independence: small and large graphs land within ~3x of
    # each other at equal density.
    names = sorted(by_dataset)
    if len(names) == 2:
        small, large = by_dataset[names[0]], by_dataset[names[1]]
        common = {r["density"] for r in small} & {r["density"] for r in large}
        for d in common:
            s = next(r for r in small if r["density"] == d)
            l = next(r for r in large if r["density"] == d)
            ratio = s["throughput"] / l["throughput"]
            assert 1 / 4 < ratio < 4
