"""Fig 16 — slowdown of the multi-round baseline vs LightTraffic.

Paper shape: running walks in multiple GPU-memory-sized rounds costs up to
~3.5x, worst when few graph partitions can be cached; more rounds = more
repeated graph loading.
"""

from repro.bench.harness import fig16_multiround
from repro.bench.reporting import render_table


def bench_fig16_multiround(run_once, show):
    rows = run_once(fig16_multiround)
    show(
        render_table(
            "Fig 16: multi-round baseline slowdown vs LightTraffic",
            ["cached partitions", "rounds", "walks/round", "slowdown"],
            [
                [
                    r["cached_partitions"],
                    r["rounds"],
                    r["walks_per_round"],
                    f"{r['slowdown']:.2f}x",
                ]
                for r in rows
            ],
        )
    )
    assert all(r["slowdown"] > 1.0 for r in rows)
    assert max(r["slowdown"] for r in rows) > 1.5
    # More rounds hurts more (at a fixed pool size).
    by = {(r["cached_partitions"], r["rounds"]): r["slowdown"] for r in rows}
    pools = sorted({r["cached_partitions"] for r in rows})
    for m_g in pools:
        assert by[(m_g, 8)] >= by[(m_g, 2)] * 0.95
