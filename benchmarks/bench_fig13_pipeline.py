"""Fig 13 — pipeline efficiency: baseline vs PS vs SS vs PS+SS.

Paper shape: the basic pipeline cannot exploit cached data; preemptive and
selective scheduling each cut total time, combine to the best result, and
improve as more graph partitions are cached.
"""

from repro.bench.harness import fig13_pipeline
from repro.bench.reporting import format_seconds, render_table


def bench_fig13_pipeline(run_once, show):
    rows = run_once(fig13_pipeline)
    show(
        render_table(
            "Fig 13: total time by scheduler variant and cached partitions",
            ["cached partitions", "variant", "total time", "iterations"],
            [
                [
                    r["cached_partitions"],
                    r["variant"],
                    format_seconds(r["total_time"]),
                    r["iterations"],
                ]
                for r in rows
            ],
        )
    )
    by = {(r["cached_partitions"], r["variant"]): r for r in rows}
    pools = sorted({r["cached_partitions"] for r in rows})
    for m_g in pools:
        base = by[(m_g, "baseline")]["total_time"]
        ps = by[(m_g, "ps")]["total_time"]
        ss = by[(m_g, "ss")]["total_time"]
        both = by[(m_g, "ps+ss")]["total_time"]
        assert ps < base and ss < base
        assert both <= min(ps, ss) * 1.10
    # The combined variant benefits from caching more partitions.
    first, last = pools[0], pools[-1]
    assert by[(last, "ps+ss")]["total_time"] < by[(first, "ps+ss")][
        "total_time"
    ]
    # The basic pipeline barely does (it ignores cached data).
    base_times = [by[(m, "baseline")]["total_time"] for m in pools]
    assert max(base_times) / min(base_times) < 1.5
