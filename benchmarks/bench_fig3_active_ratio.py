"""Fig 3 — % of active vertices/edges per iteration under the Subway baseline.

Paper shape: on UK ~60% of vertices and ~80% of edges are active in most
iterations, while only ~3% of loaded edges are actually used.
"""

from repro.bench.harness import fig3_active_ratio
from repro.bench.reporting import render_table
from repro.bench.sparkline import series_line


def bench_fig3_active_ratio(run_once, show):
    rows = run_once(fig3_active_ratio)
    show(
        render_table(
            "Fig 3: active vertices/edges per iteration (Subway baseline)",
            ["dataset", "iteration", "active V %", "active E %", "used E %"],
            [
                [
                    r["dataset"],
                    r["iteration"],
                    f"{r['active_vertex_pct']:.1f}",
                    f"{r['active_edge_pct']:.1f}",
                    f"{r['used_edge_pct']:.2f}",
                ]
                for r in rows
            ],
        )
    )
    for dataset in sorted({r["dataset"] for r in rows}):
        series = [r for r in rows if r["dataset"] == dataset]
        series.sort(key=lambda r: r["iteration"])
        show(series_line(
            f"{dataset} active edges %",
            [r["active_edge_pct"] for r in series],
        ))
        show(series_line(
            f"{dataset} used edges %  ",
            [r["used_edge_pct"] for r in series],
        ))
    uk_mid = [
        r
        for r in rows
        if r["dataset"] == "uk-sim" and 10 <= r["iteration"] <= 60
    ]
    assert uk_mid, "expected mid-run iterations for uk-sim"
    # Most of the loaded active graph is useless for updating walks.
    avg_active_e = sum(r["active_edge_pct"] for r in uk_mid) / len(uk_mid)
    avg_used_e = sum(r["used_edge_pct"] for r in uk_mid) / len(uk_mid)
    assert avg_active_e > 40.0
    assert avg_used_e < 15.0
    assert avg_used_e < avg_active_e / 4
