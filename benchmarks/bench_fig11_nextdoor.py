"""Fig 11 — comparison with the in-GPU-memory system NextDoor.

Paper shape: on datasets that fit in GPU memory, LightTraffic still
slightly outperforms NextDoor (pipelined initial load + two-level
reshuffling vs per-step sampling kernels).
"""

from repro.bench.harness import fig11_nextdoor
from repro.bench.reporting import format_rate, render_table


def bench_fig11_nextdoor(run_once, show):
    rows = run_once(fig11_nextdoor)
    show(
        render_table(
            "Fig 11: LightTraffic vs NextDoor (in-GPU-memory datasets)",
            ["dataset", "algorithm", "LT", "NextDoor", "speedup"],
            [
                [
                    r["dataset"],
                    r["algorithm"],
                    format_rate(r["lt_throughput"]),
                    format_rate(r["nextdoor_throughput"]),
                    f"{r['speedup']:.2f}x",
                ]
                for r in rows
            ],
        )
    )
    # Slightly faster: wins everywhere, but not by an order of magnitude.
    assert all(r["speedup"] > 1.0 for r in rows)
    assert all(r["speedup"] < 4.0 for r in rows)
