"""Fig 12 — walk reshuffling: two-level caching vs direct global writes.

Paper shape: two-level caching reduces reshuffle time by up to ~73%;
reshuffle time shrinks as partitions grow (fewer partitions -> fewer random
writes and a cheaper partition search).
"""

from repro.bench.harness import fig12_reshuffle
from repro.bench.reporting import format_seconds, render_table


def bench_fig12_reshuffle(run_once, show):
    rows = run_once(fig12_reshuffle)
    show(
        render_table(
            "Fig 12: reshuffle time, direct write vs two-level caching",
            ["partition KiB", "direct write", "two-level", "reduction %"],
            [
                [
                    r["partition_kib"],
                    format_seconds(r["direct_reshuffle_time"]),
                    format_seconds(r["two_level_reshuffle_time"]),
                    f"{r['reduction_pct']:.0f}",
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        assert r["two_level_reshuffle_time"] < r["direct_reshuffle_time"]
    # Up to ~73% reduction at small partitions (many partitions).
    assert max(r["reduction_pct"] for r in rows) > 55.0
    # Two-level reshuffle time decreases with larger partitions.
    two_level = [r["two_level_reshuffle_time"] for r in rows]
    assert two_level[0] > two_level[-1]
